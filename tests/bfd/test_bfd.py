"""BFD session behaviour: bring-up, detection speed, packet sizes."""

from __future__ import annotations

import pytest

from repro.bfd.messages import BfdControlPacket, BfdState, BFD_PORT
from repro.bfd.session import BfdManager, BfdTimers
from repro.iputil.udp_service import UdpService
from repro.net.capture import Capture
from repro.sim.units import MILLISECOND, SECOND
from repro.stack.addresses import Ipv4Address
from repro.stack.ipv4 import Ipv4Packet
from repro.stack.udp import UdpDatagram

from tests.conftest import make_ip_pair


def ip(text):
    return Ipv4Address.parse(text)


def bfd_pair(world, timers=BfdTimers()):
    a, b, sa, sb = make_ip_pair(world)
    ua, ub = UdpService(sa), UdpService(sb)
    events = []

    def listener(tag):
        return lambda session, is_up: events.append(
            (world.sim.now, tag, "up" if is_up else "down")
        )

    ma = BfdManager(ua, rng=world.rng.stream("bfd-a"))
    mb = BfdManager(ub, rng=world.rng.stream("bfd-b"))
    sess_a = ma.create_session(ip("10.0.0.2"), ip("10.0.0.1"), timers, listener("a"))
    sess_b = mb.create_session(ip("10.0.0.1"), ip("10.0.0.2"), timers, listener("b"))
    return a, b, sess_a, sess_b, events


def test_sessions_come_up(world):
    a, b, sa, sb, events = bfd_pair(world)
    world.run(until=5 * SECOND)
    assert sa.up and sb.up
    ups = [e for e in events if e[2] == "up"]
    assert {e[1] for e in ups} == {"a", "b"}


def test_detection_after_interface_failure(world):
    """With 100 ms tx / mult 3, the surviving side must notice within
    ~300 ms of the last received hello — the paper's BFD configuration."""
    a, b, sa, sb, events = bfd_pair(world)
    world.run(until=5 * SECOND)
    assert sa.up and sb.up
    fail_at = world.sim.now
    b.interfaces["eth1"].set_admin(False)  # b goes dark
    world.run(until=fail_at + 2 * SECOND)
    downs = [e for e in events if e[2] == "down" and e[1] == "a"]
    assert downs, "a never detected the failure"
    detect_latency = downs[0][0] - fail_at
    assert detect_latency <= 300 * MILLISECOND + 20 * MILLISECOND
    assert not sa.up


def test_detection_scales_with_timers(world):
    fast = BfdTimers(tx_interval_us=50 * MILLISECOND, detect_mult=3)
    a, b, sa, sb, events = bfd_pair(world, fast)
    world.run(until=5 * SECOND)
    fail_at = world.sim.now
    b.interfaces["eth1"].set_admin(False)
    world.run(until=fail_at + SECOND)
    downs = [e for e in events if e[2] == "down" and e[1] == "a"]
    assert downs and downs[0][0] - fail_at <= 150 * MILLISECOND + 10 * MILLISECOND


def test_control_packets_are_66_bytes(world):
    def is_bfd(frame):
        pkt = frame.payload
        return (isinstance(pkt, Ipv4Packet) and isinstance(pkt.payload, UdpDatagram)
                and pkt.payload.dst_port == BFD_PORT)

    cap = Capture(frame_filter=is_bfd)
    a, b, sa, sb, events = bfd_pair(world)
    cap.attach(a.interfaces.values())
    world.run(until=2 * SECOND)
    tx = [r for r in cap.records if r.direction.value == "tx"]
    assert tx
    assert all(r.wire_size == 66 for r in tx)  # paper Fig. 9


def test_up_rate_is_faster_than_down_rate(world):
    """Sessions transmit at 1/s while down, 10/s (100 ms) once up."""
    a, b, sa, sb, events = bfd_pair(world)
    world.run(until=4 * SECOND)
    sent_while_coming_up = sa.packets_sent
    world.run(until=8 * SECOND)
    later = sa.packets_sent - sent_while_coming_up
    assert later >= 4 * 8  # ~10/s for 4 s, with jitter margin


def test_peer_signalled_down_propagates_fast(world):
    """When one side's BFD goes AdminDown/Down, its Down packets drop the
    peer immediately (no wait for full detection time)."""
    a, b, sa, sb, events = bfd_pair(world)
    world.run(until=5 * SECOND)
    t0 = world.sim.now
    sb.admin_reset()  # b restarts: sends state=Down packets
    world.run(until=t0 + SECOND)
    downs = [e for e in events if e[2] == "down" and e[1] == "a" and e[0] >= t0]
    assert downs, "peer-signalled down not seen"


def test_session_recovers_after_interface_restored(world):
    a, b, sa, sb, events = bfd_pair(world)
    world.run(until=5 * SECOND)
    b.interfaces["eth1"].set_admin(False)
    world.run_for(SECOND)
    b.interfaces["eth1"].set_admin(True)
    sa.admin_reset()
    sb.admin_reset()
    world.run_for(5 * SECOND)
    assert sa.up and sb.up


def test_duplicate_session_rejected(world):
    a, b, sa, sb, events = bfd_pair(world)
    with pytest.raises(ValueError):
        a.bfd.create_session(ip("10.0.0.2"), ip("10.0.0.1"))


def test_discriminator_validation():
    with pytest.raises(ValueError):
        BfdControlPacket(BfdState.DOWN, 3, 0, 0, 1, 1)
    with pytest.raises(ValueError):
        BfdControlPacket(BfdState.DOWN, 0, 1, 0, 1, 1)
