"""Metric helpers: keepalive classification and report rendering."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bfd.messages import BfdControlPacket, BfdState
from repro.bgp.messages import BgpKeepalive, BgpUpdate
from repro.core.messages import MtpFullHello, MtpKeepalive
from repro.harness.metrics import classify_keepalive_frame
from repro.harness.report import render_table, save_result
from repro.stack.addresses import BROADCAST_MAC, Ipv4Address, MacAddress
from repro.stack.ethernet import ETHERTYPE_IPV4, ETHERTYPE_MTP, EthernetFrame
from repro.stack.ipv4 import Ipv4Packet, PROTO_TCP, PROTO_UDP
from repro.stack.addresses import Ipv4Network
from repro.stack.payload import RawBytes
from repro.stack.tcp_segment import TcpFlags, TcpSegment
from repro.stack.udp import UdpDatagram

MAC = MacAddress.from_index(3)
IP_A = Ipv4Address.parse("172.16.0.0")
IP_B = Ipv4Address.parse("172.16.0.1")


def eth(ethertype, payload):
    return EthernetFrame(BROADCAST_MAC, MAC, ethertype, payload)


class TestClassify:
    def test_mtp_keepalive(self):
        assert classify_keepalive_frame(eth(ETHERTYPE_MTP, MtpKeepalive())) == "mtp"

    def test_mtp_hello_not_counted(self):
        assert classify_keepalive_frame(
            eth(ETHERTYPE_MTP, MtpFullHello(tier=2))) is None

    def test_bfd(self):
        packet = BfdControlPacket(BfdState.UP, 3, 1, 2, 100, 100)
        frame = eth(ETHERTYPE_IPV4, Ipv4Packet(
            IP_A, IP_B, PROTO_UDP, UdpDatagram(49152, 3784, packet)))
        assert classify_keepalive_frame(frame) == "bfd"

    def test_other_udp_not_bfd(self):
        frame = eth(ETHERTYPE_IPV4, Ipv4Packet(
            IP_A, IP_B, PROTO_UDP, UdpDatagram(1, 7777, RawBytes(24))))
        assert classify_keepalive_frame(frame) is None

    def test_bgp_keepalive(self):
        seg = TcpSegment(179, 50000, seq=1, ack=1, flags=TcpFlags.ACK,
                         payload=BgpKeepalive())
        frame = eth(ETHERTYPE_IPV4, Ipv4Packet(IP_A, IP_B, PROTO_TCP, seg))
        assert classify_keepalive_frame(frame) == "bgp"

    def test_pure_tcp_ack_on_bgp_session(self):
        seg = TcpSegment(50000, 179, seq=1, ack=1, flags=TcpFlags.ACK)
        frame = eth(ETHERTYPE_IPV4, Ipv4Packet(IP_A, IP_B, PROTO_TCP, seg))
        assert classify_keepalive_frame(frame) == "tcp-ack"

    def test_bgp_update_is_not_keepalive(self):
        update = BgpUpdate(withdrawn=(Ipv4Network.parse("10.0.0.0/8"),))
        seg = TcpSegment(179, 50000, seq=1, ack=1, flags=TcpFlags.ACK,
                         payload=update)
        frame = eth(ETHERTYPE_IPV4, Ipv4Packet(IP_A, IP_B, PROTO_TCP, seg))
        assert classify_keepalive_frame(frame) is None

    def test_non_bgp_tcp_ignored(self):
        seg = TcpSegment(1000, 2000, seq=1, ack=1, flags=TcpFlags.ACK)
        frame = eth(ETHERTYPE_IPV4, Ipv4Packet(IP_A, IP_B, PROTO_TCP, seg))
        assert classify_keepalive_frame(frame) is None


class TestReport:
    def test_render_table_alignment(self):
        text = render_table("Title", ["a", "long-col"],
                            [[1, 2], ["wide-value", 3]])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert lines[1] == "====="
        assert "a" in lines[2] and "long-col" in lines[2]
        assert len({len(lines[3].split()[0])}) == 1  # separator present

    def test_render_table_note(self):
        text = render_table("T", ["x"], [[1]], note="a footnote")
        assert text.endswith("a footnote")

    def test_save_result_writes_file(self, tmp_path: Path):
        path = save_result(tmp_path / "sub", "fig_test", "hello")
        assert path.read_text() == "hello\n"
        assert path.name == "fig_test.txt"
