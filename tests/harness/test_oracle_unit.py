"""Oracle internals: the valley-free closures on hand-built fabrics."""

from __future__ import annotations

import pytest

from repro.harness.oracle import (
    _down_closure,
    _up_closure,
    alive_fabric_graph,
    oracle_reachable,
)
from repro.net.world import World
from repro.topology.clos import build_folded_clos, two_pod_params


@pytest.fixture
def topo():
    world = World(seed=3)
    return build_folded_clos(two_pod_params(), world=world)


def test_graph_excludes_server_links(topo):
    graph = alive_fabric_graph(topo)
    assert set(graph.nodes) == set(topo.routers())
    # 16 fabric links, both directions
    assert graph.number_of_edges() == 32


def test_up_closure_is_tier_monotone(topo):
    graph = alive_fabric_graph(topo)
    tor = topo.tors[0][0][0]
    closure = _up_closure(graph, tor)
    # the ToR, its two aggs, and their four plane tops
    assert len(closure) == 7
    assert tor in closure
    assert all(graph.nodes[n]["tier"] >= 1 for n in closure)
    # no other ToRs (that would require a down edge)
    assert sum(1 for n in closure if graph.nodes[n]["tier"] == 1) == 1


def test_down_closure_mirrors_up(topo):
    graph = alive_fabric_graph(topo)
    tor = topo.tors[0][1][1]
    closure = _down_closure(graph, tor)
    assert len(closure) == 7


def test_one_sided_failure_removes_both_edge_directions(topo):
    case = topo.failure_cases()["TC1"]
    topo.node(case.node).interfaces[case.interface].set_admin(False)
    graph = alive_fabric_graph(topo)
    assert not graph.has_edge(case.node, case.peer_node)
    assert not graph.has_edge(case.peer_node, case.node)


def test_reachability_via_shared_top(topo):
    # cut both plane-1 agg uplinks of pod 1: plane 2 still connects
    agg = topo.aggs[0][0][0]
    for iface in list(topo.node(agg).interfaces.values()):
        peer = iface.peer()
        if peer is not None and peer.node.tier == 3:
            iface.set_admin(False)
    assert oracle_reachable(topo, topo.tors[0][0][0], topo.tors[0][1][0])


def test_intra_pod_reachability_needs_only_an_agg(topo):
    # cut every agg-top link: pods are isolated from each other but
    # intra-pod pairs still reach via their aggs
    for link in topo.world.links:
        tiers = {link.end_a.node.tier, link.end_b.node.tier}
        if tiers == {2, 3}:
            link.end_a.set_admin(False)
    assert oracle_reachable(topo, topo.tors[0][0][0], topo.tors[0][0][1])
    assert not oracle_reachable(topo, topo.tors[0][0][0], topo.tors[0][1][0])
