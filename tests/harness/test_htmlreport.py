"""HTML report generation: structure, chart grammar, data fidelity."""

from __future__ import annotations

import re

import pytest

from repro.harness.htmlreport import (
    SeriesSet,
    dot_plot_log,
    grouped_bar_chart,
    render_report,
)

DATA = SeriesSet(
    categories=("TC1", "TC2"),
    names=("MR-MTP", "BGP/ECMP"),
    values=[[100.0, 0.6], [2400.0, 1.0]],
)


def test_seriesset_validation():
    with pytest.raises(ValueError):
        SeriesSet(("a",), ("x", "y"), [[1.0]])
    with pytest.raises(ValueError):
        SeriesSet(("a",), ("x",), [[1.0, 2.0]])
    with pytest.raises(ValueError):
        SeriesSet(("a",), ("1", "2", "3", "4"), [[1.0]] * 4)


def test_bar_chart_structure():
    block = grouped_bar_chart("Bytes", DATA, unit="bytes")
    assert block.count('<path class="mark"') == 4
    assert block.count("<title>") == 4  # hover tooltip per mark
    assert "var(--series-1)" in block and "var(--series-2)" in block
    # direct value labels present, in default text ink (no fill attr)
    assert ">2,400<" in block
    assert re.search(r'<text[^>]*fill="var\(--series', block) is None
    # legend + table view
    assert block.count('class="key"') == 2
    assert "<details>" in block and "<table>" in block


def test_bar_data_end_is_rounded_baseline_square():
    block = grouped_bar_chart("Bytes", DATA, unit="bytes")
    # rounded top: quadratic curves present; square baseline: path closes
    # with a straight drop to the baseline
    first_path = re.search(r'd="([^"]+)"', block).group(1)
    assert first_path.count("Q") == 2
    assert first_path.endswith("Z")


def test_dot_plot_log_structure():
    block = dot_plot_log("Convergence", DATA, unit="ms")
    assert block.count('r="5"') == 4      # >=8px markers (d=10)
    assert block.count('r="7"') == 4      # 2px surface ring under each
    assert "log scale" in block
    # decade gridlines cover the full value range (0.6 .. 2400)
    for decade in ("0.10", "1", "10", "100", "1,000", "10,000"):
        assert f">{decade}<" in block, decade


def test_render_report_self_contained(tmp_path):
    out = render_report("Title", "intro", [grouped_bar_chart("A", DATA, "x")],
                        tmp_path / "r.html")
    text = out.read_text()
    assert text.startswith("<!doctype html>")
    assert "prefers-color-scheme: dark" in text  # selected dark palette
    assert "http" not in text.split("</style>")[1], "no external resources"


def test_single_hue_never_cycles():
    """Series colors come from the fixed slots, never generated."""
    block = grouped_bar_chart("Bytes", DATA, unit="bytes")
    hues = set(re.findall(r"var\(--series-(\d)\)", block))
    assert hues == {"1", "2"}
