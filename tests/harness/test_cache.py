"""Edge-case tests for the on-disk result cache.

Covers the hazards that actually bite content-addressed caches: hash
instability across processes (PYTHONHASHSEED), missing invalidation when
timer bundles change, and corrupted or torn entries poisoning reruns.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bfd.session import BfdTimers
from repro.core.config import MtpTimers
from repro.sim.units import MILLISECOND
from repro.topology.clos import two_pod_params
from repro.harness.cache import CACHE_SCHEMA, ResultCache, task_key
from repro.harness.experiments import (
    ExperimentResult,
    ExperimentOutcome,
    StackKind,
    StackTimers,
    decode_experiment_outcome,
    encode_experiment_outcome,
)
from repro.harness.parallel import FanoutReport, execute_tasks
from repro.harness.sweep import (
    FailurePoint,
    decode_sweep_outcome,
    encode_sweep_outcome,
    run_sweep_point,
    summarize,
    sweep_point_key,
    sweep_specs,
)

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _spec():
    return sweep_specs(two_pod_params(), StackKind.MTP,
                       points=[FailurePoint("L-1-1", "eth1", "S-1-1")])[0]


# ----------------------------------------------------------------------
# key stability and invalidation
# ----------------------------------------------------------------------
def _key_in_subprocess(program: str, hashseed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=hashseed,
               PYTHONPATH=SRC + os.pathsep
               + os.environ.get("PYTHONPATH", ""))
    out = subprocess.run([sys.executable, "-c", program], env=env,
                         capture_output=True, text=True, check=True)
    return out.stdout.strip()


def test_task_key_stable_across_processes():
    """The key must not depend on per-process hash randomization."""
    program = (
        "from repro.topology.clos import two_pod_params\n"
        "from repro.harness.experiments import StackKind\n"
        "from repro.harness.sweep import (FailurePoint, sweep_point_key,\n"
        "                                 sweep_specs)\n"
        "spec = sweep_specs(two_pod_params(), StackKind.MTP,\n"
        "                   points=[FailurePoint('L-1-1', 'eth1', 'S-1-1')])[0]\n"
        "print(sweep_point_key(spec))\n"
    )
    keys = {_key_in_subprocess(program, h) for h in ("0", "12345")}
    keys.add(sweep_point_key(_spec()))
    assert len(keys) == 1, keys


def test_registry_spec_key_stable_across_processes():
    """Registry-name specs (with canonical params in the key) must hash
    identically across processes too — the sweep cache is shared."""
    program = (
        "from repro.topology.clos import two_pod_params\n"
        "from repro.harness.experiments import (ExperimentSpec,\n"
        "                                       experiment_task_key)\n"
        "from repro.stacks import resolve_spec\n"
        "spec = ExperimentSpec(params=two_pod_params(),\n"
        "                      stack=resolve_spec('mtp-spray'),\n"
        "                      case_name='TC1', seed=3)\n"
        "print(experiment_task_key(spec))\n"
    )
    from repro.harness.experiments import ExperimentSpec, experiment_task_key
    from repro.stacks import resolve_spec

    local = experiment_task_key(ExperimentSpec(
        params=two_pod_params(), stack=resolve_spec("mtp-spray"),
        case_name="TC1", seed=3))
    keys = {_key_in_subprocess(program, h) for h in ("0", "9999")}
    keys.add(local)
    assert len(keys) == 1, keys


def test_key_invalidates_when_timers_change():
    spec = _spec()
    base = sweep_point_key(spec)
    for timers in (
        StackTimers(mtp=MtpTimers(hello_us=25 * MILLISECOND,
                                  dead_us=50 * MILLISECOND)),
        StackTimers(bfd=BfdTimers(tx_interval_us=300 * MILLISECOND)),
    ):
        changed = sweep_specs(two_pod_params(), StackKind.MTP,
                              timers=timers, points=[spec.point])[0]
        assert sweep_point_key(changed) != base


def test_key_invalidates_on_every_component():
    spec = _spec()
    base = sweep_point_key(spec)
    variants = [
        sweep_specs(two_pod_params(tors_per_pod=3), StackKind.MTP,
                    points=[spec.point])[0],
        sweep_specs(two_pod_params(), StackKind.BGP,
                    points=[spec.point])[0],
        sweep_specs(two_pod_params(), StackKind.MTP, seed=1,
                    points=[spec.point])[0],
        sweep_specs(two_pod_params(), StackKind.MTP,
                    points=[FailurePoint("L-1-1", "eth2", "S-1-2")])[0],
    ]
    assert base not in {sweep_point_key(v) for v in variants}


def test_task_key_family_namespacing():
    assert task_key("a", x=1) != task_key("b", x=1)
    assert task_key("a", x=1) == task_key("a", x=1)


# ----------------------------------------------------------------------
# corruption recovery
# ----------------------------------------------------------------------
def _entry_path(cache: ResultCache, key: str) -> Path:
    return cache.root / key[:2] / f"{key}.json"


def test_corrupted_entry_dropped_and_recomputed(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("ab" * 32, {"v": 1})
    path = _entry_path(cache, "ab" * 32)
    path.write_text("{ not json")
    assert cache.get("ab" * 32) is None
    assert cache.dropped == 1
    assert not path.exists()  # poisoned entry removed
    cache.put("ab" * 32, {"v": 2})
    assert cache.get("ab" * 32) == {"v": 2}


def test_truncated_entry_treated_as_corrupt(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("cd" * 32, {"v": 1})
    path = _entry_path(cache, "cd" * 32)
    path.write_text(path.read_text()[:10])  # torn write
    assert cache.get("cd" * 32) is None
    assert cache.dropped == 1


def test_key_mismatch_treated_as_corrupt(tmp_path):
    """An entry copied/renamed to the wrong slot must never be served."""
    cache = ResultCache(tmp_path)
    cache.put("ef" * 32, {"v": 1})
    good = _entry_path(cache, "ef" * 32)
    evil = _entry_path(cache, "ff" * 32)
    evil.parent.mkdir(parents=True, exist_ok=True)
    evil.write_text(good.read_text())
    assert cache.get("ff" * 32) is None
    assert cache.dropped == 1


def test_schema_bump_invalidates(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("0a" * 32, {"v": 1})
    path = _entry_path(cache, "0a" * 32)
    entry = json.loads(path.read_text())
    entry["schema"] = CACHE_SCHEMA + 1
    path.write_text(json.dumps(entry))
    assert cache.get("0a" * 32) is None


def test_stale_schema_entry_recomputed(tmp_path):
    """A pre-bump entry (schema N-1, e.g. the enum-keyed v1 layout) must
    be discarded and the slot recomputed through the runner — stale
    payloads never replay after a schema migration."""
    cache = ResultCache(tmp_path)
    spec = _spec()
    key = sweep_point_key(spec)
    path = _entry_path(cache, key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(
        {"schema": CACHE_SCHEMA - 1, "key": key,
         "payload": {"stale": "v1-era entry"}}))
    report = FanoutReport()
    out = execute_tasks([spec], run_sweep_point, cache=cache,
                        key_fn=sweep_point_key,
                        encode=encode_sweep_outcome,
                        decode=decode_sweep_outcome, report=report)
    assert (report.executed, report.cached) == (1, 0)
    assert cache.dropped == 1
    assert out[0].result.ok
    # the recomputed entry replaced the stale one and now replays
    replay = FanoutReport()
    out2 = execute_tasks([spec], run_sweep_point, cache=cache,
                         key_fn=sweep_point_key,
                         encode=encode_sweep_outcome,
                         decode=decode_sweep_outcome, report=replay)
    assert (replay.executed, replay.cached) == (0, 1)
    assert out2[0].digest == out[0].digest


def test_miss_then_hit_counters(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get("12" * 32) is None
    cache.put("12" * 32, {"v": 1})
    assert cache.get("12" * 32) == {"v": 1}
    assert (cache.hits, cache.misses) == (1, 1)
    assert len(cache) == 1
    assert "12" * 32 in cache


# ----------------------------------------------------------------------
# payload round-trips
# ----------------------------------------------------------------------
def test_sweep_outcome_roundtrip():
    outcome = run_sweep_point(_spec())
    restored = decode_sweep_outcome(encode_sweep_outcome(outcome))
    assert restored.result == outcome.result
    assert restored.digest == outcome.digest
    # tuple-ness of unreachable entries survives, so summaries stay
    # byte-identical between fresh and replayed sweeps
    assert summarize([restored.result]) == summarize([outcome.result])


def test_experiment_outcome_roundtrip():
    result = ExperimentResult(
        stack="bgp-bfd", case="TC3", seed=5, convergence_us=1234,
        control_bytes=97, update_count=1, blast_routers=["S-1-1", "T-1"],
    )
    outcome = ExperimentOutcome(result=result, digest="d" * 64)
    restored = decode_experiment_outcome(encode_experiment_outcome(outcome))
    assert restored.result == result
    assert restored.digest == outcome.digest


# ----------------------------------------------------------------------
# cache + runner integration
# ----------------------------------------------------------------------
def test_execute_tasks_replays_from_cache(tmp_path):
    cache = ResultCache(tmp_path)
    specs = sweep_specs(two_pod_params(), StackKind.MTP)[:2]
    first = FanoutReport()
    out1 = execute_tasks(specs, run_sweep_point, cache=cache,
                         key_fn=sweep_point_key,
                         encode=encode_sweep_outcome,
                         decode=decode_sweep_outcome, report=first)
    assert (first.executed, first.cached) == (2, 0)
    second = FanoutReport()
    out2 = execute_tasks(specs, run_sweep_point, cache=cache,
                         key_fn=sweep_point_key,
                         encode=encode_sweep_outcome,
                         decode=decode_sweep_outcome, report=second)
    assert (second.executed, second.cached) == (0, 2)
    assert [o.digest for o in out1] == [o.digest for o in out2]
    assert [o.result for o in out1] == [o.result for o in out2]


def test_execute_tasks_requires_full_codec(tmp_path):
    with pytest.raises(ValueError):
        execute_tasks([], run_sweep_point, cache=ResultCache(tmp_path))
