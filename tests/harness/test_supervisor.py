"""Fault-injection tests for the run supervisor.

Every hazard the supervisor exists for is injected deliberately: a task
that raises, a task that raises the *same* way twice (deterministic bug
— quarantined without a third attempt), a task that sleeps past its
deadline (killed by the watchdog, not awaited), a worker that dies
without reporting, a flaky task that succeeds on retry, and a campaign
interrupted mid-flight that must resume from its checkpoints.  A
Hypothesis property pins down the seeded backoff schedule: a pure
function of (policy seed, task key, attempt), bounded by the cap.
"""

from __future__ import annotations

import os
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.harness.cache import ResultCache
from repro.harness.convergence import QuiescenceTimeout, converge_from_cold
from repro.harness.parallel import FanoutInterrupted, execute_tasks
from repro.harness.report import quarantine_rows, render_quarantine_table
from repro.harness.supervisor import (
    CACHED,
    CRASH,
    DONE,
    ERROR,
    OK,
    QUARANTINED,
    TIMEOUT,
    Attempt,
    RetryPolicy,
    SupervisorInterrupted,
    SupervisorReport,
    TaskRecord,
    backoff_schedule,
    supervise_tasks,
)
from repro.net.world import World


# ----------------------------------------------------------------------
# injected-fault workers (top level so the worker processes can pickle
# them; each misbehaves only for its trigger spec)
# ----------------------------------------------------------------------
def ok_worker(spec):
    return f"done-{spec}"


def boom_worker(spec):
    if spec == "bad":
        raise ValueError("injected deterministic failure")
    return f"done-{spec}"


def hang_worker(spec):
    if spec == "hang":
        time.sleep(60)
    return f"done-{spec}"


def crash_worker(spec):
    if spec == "crash":
        os._exit(9)
    return f"done-{spec}"


def flaky_worker(spec):
    """Fails once, then succeeds: the marker file is the cross-process
    memory of the first (failed) attempt."""
    marker, value = spec
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError("injected transient failure")
    return f"done-{value}"


def interrupting_worker(spec):
    if spec == "stop":
        raise KeyboardInterrupt
    return f"done-{spec}"


def _key(spec):
    return f"key-{spec}"


def _encode(outcome):
    return {"value": outcome}


def _decode(payload):
    return payload["value"]


# ----------------------------------------------------------------------
# the happy path and the state machine
# ----------------------------------------------------------------------
def test_all_ok_tasks_done_in_order():
    report = SupervisorReport()
    results = supervise_tasks(["a", "b", "c"], ok_worker, jobs=2,
                              report=report)
    assert results == ["done-a", "done-b", "done-c"]
    assert [r.state for r in report.records] == [DONE] * 3
    assert all(len(r.attempts) == 1 and r.attempts[0].outcome == OK
               for r in report.records)
    assert report.quarantined == [] and report.retried == []


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(deadline_s=0.0)


# ----------------------------------------------------------------------
# injected faults
# ----------------------------------------------------------------------
def test_deterministic_failure_quarantined_without_third_attempt():
    report = SupervisorReport()
    policy = RetryPolicy(max_attempts=5, backoff_base_s=0.01,
                         backoff_cap_s=0.02)
    results = supervise_tasks(["a", "bad", "c"], boom_worker,
                              policy=policy, report=report)
    # the grid degrades, it does not abort
    assert results == ["done-a", None, "done-c"]
    bad = report.records[1]
    assert bad.state == QUARANTINED
    # identical ValueError twice => no third attempt despite max_attempts=5
    assert len(bad.attempts) == 2
    assert all(a.outcome == ERROR and a.exception == "ValueError"
               for a in bad.attempts)
    assert bad.attempts[0].traceback_digest == bad.attempts[1].traceback_digest
    assert "deterministic failure" in bad.quarantine_reason
    assert bad.failure_class == "ValueError"


def test_hung_worker_killed_by_watchdog():
    report = SupervisorReport()
    policy = RetryPolicy(deadline_s=0.3, max_attempts=2,
                         backoff_base_s=0.01, backoff_cap_s=0.02)
    t0 = time.monotonic()
    results = supervise_tasks(["a", "hang"], hang_worker, jobs=2,
                              policy=policy, report=report)
    wall = time.monotonic() - t0
    assert results == ["done-a", None]
    hung = report.records[1]
    assert hung.state == QUARANTINED
    assert [a.outcome for a in hung.attempts] == [TIMEOUT, TIMEOUT]
    assert all(a.exception == "WatchdogTimeout" for a in hung.attempts)
    assert "exhausted 2 attempt(s)" in hung.quarantine_reason
    # killed, not awaited: two 0.3 s deadlines, not two 60 s sleeps
    assert wall < 10.0


def test_dead_worker_recorded_as_crash():
    report = SupervisorReport()
    policy = RetryPolicy(max_attempts=2, backoff_base_s=0.01,
                         backoff_cap_s=0.02)
    results = supervise_tasks(["crash", "b"], crash_worker,
                              policy=policy, report=report)
    assert results == [None, "done-b"]
    dead = report.records[0]
    assert dead.state == QUARANTINED
    assert [a.outcome for a in dead.attempts] == [CRASH, CRASH]
    assert dead.failure_class == "WorkerCrash"
    assert "code 9" in dead.attempts[0].detail


def test_flaky_task_retries_then_succeeds(tmp_path):
    report = SupervisorReport()
    policy = RetryPolicy(max_attempts=3, backoff_base_s=0.01,
                         backoff_cap_s=0.02)
    marker = str(tmp_path / "attempted")
    results = supervise_tasks([(marker, "x")], flaky_worker,
                              policy=policy, report=report)
    assert results == ["done-x"]
    record = report.records[0]
    assert record.state == DONE
    assert [a.outcome for a in record.attempts] == [ERROR, OK]
    assert len(record.backoff_s) == 1
    assert report.retried == [record]


# ----------------------------------------------------------------------
# checkpoint / resume
# ----------------------------------------------------------------------
def test_completed_tasks_checkpoint_and_replay(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    supervise_tasks(["a", "b"], ok_worker, cache=cache, key_fn=_key,
                    encode=_encode, decode=_decode)
    assert cache.checkpointed([_key(s) for s in ("a", "b", "c", "d")]) == 2

    report = SupervisorReport()
    results = supervise_tasks(["a", "b", "c", "d"], ok_worker, cache=cache,
                              key_fn=_key, encode=_encode, decode=_decode,
                              report=report)
    assert results == ["done-a", "done-b", "done-c", "done-d"]
    assert [r.state for r in report.records] == [CACHED, CACHED, DONE, DONE]
    assert report.fanout.cached == 2 and report.fanout.executed == 2


def test_quarantined_tasks_are_not_checkpointed(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    policy = RetryPolicy(max_attempts=2, backoff_base_s=0.01,
                         backoff_cap_s=0.02)
    supervise_tasks(["a", "bad"], boom_worker, policy=policy, cache=cache,
                    key_fn=_key, encode=_encode, decode=_decode)
    assert _key("a") in cache
    assert _key("bad") not in cache  # a rerun must attempt it again


def test_cache_requires_codec():
    with pytest.raises(ValueError):
        supervise_tasks(["a"], ok_worker, cache=ResultCache(), key_fn=_key)


def test_interrupts_are_keyboard_interrupts():
    # `except KeyboardInterrupt` in callers keeps catching Ctrl-C
    assert issubclass(SupervisorInterrupted, KeyboardInterrupt)
    assert issubclass(FanoutInterrupted, KeyboardInterrupt)


def test_execute_tasks_salvages_on_interrupt(tmp_path):
    """A Ctrl-C mid-grid checkpoints everything already finished and
    reports the salvage accounting on the exception."""
    cache = ResultCache(tmp_path / "cache")
    with pytest.raises(FanoutInterrupted) as exc_info:
        execute_tasks(["a", "stop", "c"], interrupting_worker, cache=cache,
                      key_fn=_key, encode=_encode, decode=_decode)
    exc = exc_info.value
    assert (exc.done, exc.total, exc.salvaged) == (1, 3, 1)
    assert _key("a") in cache
    # the resumed run replays the salvaged task and finishes the rest
    results = execute_tasks(["a", "b", "c"], ok_worker, cache=cache,
                            key_fn=_key, encode=_encode, decode=_decode)
    assert results == ["done-a", "done-b", "done-c"]


# ----------------------------------------------------------------------
# seeded backoff: deterministic per (seed, key), bounded by the cap
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31),
       key=st.text(min_size=1, max_size=40),
       max_attempts=st.integers(min_value=1, max_value=6))
def test_backoff_schedule_is_deterministic_per_key(seed, key, max_attempts):
    policy = RetryPolicy(max_attempts=max_attempts, seed=seed)
    first = backoff_schedule(policy, key)
    assert first == backoff_schedule(policy, key)  # pure function
    assert len(first) == max_attempts - 1
    for attempt, delay in enumerate(first, start=1):
        cap = min(policy.backoff_cap_s,
                  policy.backoff_base_s * (2 ** (attempt - 1)))
        assert cap / 2 <= delay <= cap  # jitter stays inside [cap/2, cap]


def test_backoff_decorrelated_across_keys():
    policy = RetryPolicy(max_attempts=4)
    assert backoff_schedule(policy, "task-a") != backoff_schedule(
        policy, "task-b")
    # a different policy seed reshuffles the same key's schedule
    assert backoff_schedule(policy, "task-a") != backoff_schedule(
        RetryPolicy(max_attempts=4, seed=1), "task-a")


# ----------------------------------------------------------------------
# typed quiescence timeout (satellite)
# ----------------------------------------------------------------------
def test_quiescence_timeout_carries_diagnostics():
    world = World(seed=0)

    def never():
        return False

    with pytest.raises(QuiescenceTimeout) as exc_info:
        converge_from_cold(world, None, never, max_time_us=1000)
    exc = exc_info.value
    assert isinstance(exc, TimeoutError)  # old `except TimeoutError` holds
    assert exc.sim_time_us == 1000
    assert exc.pending_events == 0
    assert "pending timer(s)" in str(exc)


# ----------------------------------------------------------------------
# quarantine table (satellite)
# ----------------------------------------------------------------------
def _quarantined_record():
    record = TaskRecord(index=1, key="abcdef0123456789", label="mtp T-1:eth1")
    record.state = QUARANTINED
    record.attempts = [
        Attempt(number=1, outcome=ERROR, duration_s=0.1,
                exception="ValueError", traceback_digest="d1"),
        Attempt(number=2, outcome=ERROR, duration_s=0.1,
                exception="ValueError", traceback_digest="d1"),
    ]
    record.quarantine_reason = "deterministic failure: ValueError twice"
    return record


def test_quarantine_table_lists_only_quarantined_tasks():
    done = TaskRecord(index=0, key="k0", label="ok task", state=DONE)
    rows = quarantine_rows([done, _quarantined_record()])
    assert len(rows) == 1
    label, key, attempts, failure_class, reason = rows[0]
    assert label == "mtp T-1:eth1"
    assert key == "abcdef012345"  # truncated content hash
    assert attempts == "2" and failure_class == "ValueError"
    assert "deterministic" in reason

    text = render_quarantine_table([done, _quarantined_record()])
    assert "quarantined tasks" in text and "ValueError" in text
    assert render_quarantine_table([done]) == ""


def test_supervisor_clamps_oversubscribed_concurrency(monkeypatch):
    """jobs=2 on a 1-core host: concurrency clamps to 1 (children still
    spawn per attempt so the watchdog keeps working) and the report says
    why."""
    monkeypatch.setattr("repro.harness.supervisor.os.cpu_count", lambda: 1)
    report = SupervisorReport()
    results = supervise_tasks(["a", "b"], ok_worker, jobs=2,
                              policy=RetryPolicy(max_attempts=1),
                              report=report)
    assert results == ["done-a", "done-b"]
    assert report.fanout.jobs == 1
    assert any("oversubscribe" in note for note in report.fanout.notes)
    assert all(r.state == DONE for r in report.records)
