"""CLI entry points (python -m repro ...)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv: str) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


def test_topo(capsys):
    out = run_cli(capsys, "topo", "--pods", "2")
    assert "routers: 12" in out
    assert "TC1: fail L-1-1:eth1" in out
    assert "192.168.11.0/24 -> ToR VID 11" in out


def test_topo_with_zones(capsys):
    out = run_cli(capsys, "topo", "--pods", "2", "--zones", "2")
    assert "2 zone(s)" in out


def test_converge_mtp(capsys):
    out = run_cli(capsys, "converge", "--stack", "mtp")
    assert "MR-MTP converged" in out
    assert "VID table:" in out
    assert "11.1" in out


def test_converge_bgp_shows_summary_and_fib(capsys):
    out = run_cli(capsys, "converge", "--stack", "bgp")
    assert "BGP router" in out
    assert "established" in out
    assert "proto bgp metric 20" in out


def test_fail(capsys):
    out = run_cli(capsys, "fail", "--stack", "mtp", "--case", "TC2")
    assert "convergence time" in out
    assert "blast radius" in out


def test_loss(capsys):
    out = run_cli(capsys, "loss", "--stack", "mtp", "--case", "TC2",
                  "--rate", "500")
    assert "lost=" in out


def test_config_mtp(capsys):
    out = run_cli(capsys, "config", "--stack", "mtp", "--pods", "2")
    assert "leavesNetworkPortDict" in out


def test_config_bgp_specific_node(capsys):
    out = run_cli(capsys, "config", "--stack", "bgp", "--node", "L-1-1")
    assert "configuration for L-1-1" in out
    assert "network 192.168.11.0/24" in out


def test_unknown_stack_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fail", "--stack", "ospf"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_converge_with_explicit_nodes(capsys):
    out = run_cli(capsys, "converge", "--stack", "mtp", "--show", "L-1-1")
    assert "ToR VID: 11" in out


def test_loss_far_direction(capsys):
    out = run_cli(capsys, "loss", "--stack", "mtp", "--case", "TC1",
                  "--direction", "far", "--rate", "500")
    assert "sender far" in out and "lost=" in out


def test_experiment_rejects_bad_direction():
    from repro.harness.experiments import StackKind, run_packet_loss_experiment
    from repro.topology.clos import two_pod_params

    with pytest.raises(ValueError):
        run_packet_loss_experiment(two_pod_params(), StackKind.MTP, "TC1",
                                   direction="sideways")


def test_stacks_json_is_machine_readable(capsys):
    import json

    from repro.stacks import available_stacks

    entries = json.loads(run_cli(capsys, "stacks", "--json"))
    assert [e["name"] for e in entries] == list(available_stacks())
    for entry in entries:
        assert set(entry) == {"name", "display", "description", "params"}
    by_name = {e["name"]: e for e in entries}
    assert by_name["mtp-spray"]["params"] == {"per_packet_spray": True}


def test_scenario_list(capsys):
    out = run_cli(capsys, "scenario", "list")
    for name in ("tc1", "tc4", "flap-storm", "double-cut", "drain",
                 "rolling-restart"):
        assert name in out


def test_scenario_show_emits_loadable_json(capsys, tmp_path):
    import json

    from repro.scenario import Scenario, get_scenario

    out = run_cli(capsys, "scenario", "show", "double-cut")
    assert Scenario.from_payload(json.loads(out)) == \
        get_scenario("double-cut")
    # and the shown JSON round-trips through --file
    path = tmp_path / "custom.json"
    path.write_text(out)
    out2 = run_cli(capsys, "scenario", "show", "--file", str(path))
    assert json.loads(out2) == json.loads(out)


def test_scenario_run(capsys, tmp_path):
    out = run_cli(capsys, "scenario", "run", "tc2", "--stack", "mtp",
                  "--cache-dir", str(tmp_path))
    assert "tc2" in out and "conv" in out
    assert "1 scenario runs" in out
    # second invocation replays from the cache
    out2 = run_cli(capsys, "scenario", "run", "tc2", "--stack", "mtp",
                   "--cache-dir", str(tmp_path))
    assert "1 from cache" in out2


def test_scenario_run_digests_flag(capsys):
    out = run_cli(capsys, "scenario", "run", "tc4", "--stack", "mtp",
                  "--no-cache", "--digests")
    prefix = out.splitlines()[0].split()[0]
    assert len(prefix) == 16 and all(c in "0123456789abcdef"
                                     for c in prefix)


def test_scenario_rejects_unknown_names(capsys):
    assert main(["scenario", "show", "tc9"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_scenario_rejects_bad_target(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text('{"name": "bad", "events": [{"op": "iface_down", '
                    '"target": "tor[999].uplink[0]"}]}')
    assert main(["scenario", "run", "--file", str(path), "--stack", "mtp",
                 "--no-cache"]) == 2
    assert "out of range" in capsys.readouterr().err


# ----------------------------------------------------------------------
# fault-tolerant campaigns: --supervise / --resume / exit codes
# ----------------------------------------------------------------------
def test_resume_rejects_no_cache(capsys):
    assert main(["scenario", "run", "tc2", "--stack", "mtp",
                 "--resume", "--no-cache"]) == 2
    assert "drop --no-cache" in capsys.readouterr().err


def test_supervised_run_checkpoints_then_resumes(capsys, tmp_path):
    out = run_cli(capsys, "scenario", "run", "tc2", "--stack", "mtp",
                  "--cache-dir", str(tmp_path), "--supervise")
    assert "1 scenario runs" in out
    # --resume replays the checkpoint and prints the accounting
    out2 = run_cli(capsys, "scenario", "run", "tc2", "--stack", "mtp",
                   "--cache-dir", str(tmp_path), "--supervise", "--resume")
    assert "resume: 1/1 task(s) replayed from checkpoint, 0 executed" in out2


def test_supervised_digest_matches_plain(capsys):
    """The supervisor's process-per-task execution must not perturb the
    run digest — the serial==parallel guarantee extends to it."""
    plain = run_cli(capsys, "scenario", "run", "tc2", "--stack", "mtp",
                    "--no-cache", "--digests").splitlines()[0]
    supervised = run_cli(capsys, "scenario", "run", "tc2", "--stack", "mtp",
                         "--no-cache", "--digests",
                         "--supervise").splitlines()[0]
    assert plain == supervised


def test_sweep_report_includes_quarantine_section(capsys, tmp_path):
    prefix = tmp_path / "report"
    run_cli(capsys, "sweep", "--stack", "mtp", "--cache-dir",
            str(tmp_path / "cache"), "--report", str(prefix))
    text = (tmp_path / "report.txt").read_text()
    assert "fan-out:" in text
    assert "quarantined tasks: none" in text  # clean run records the fact
    html = (tmp_path / "report.html").read_text()
    assert "<table>" in html and "single-failure sweep" in html


def test_campaign_epilogue_exit_codes(capsys):
    import argparse

    from repro.cli import EXIT_INFRA, EXIT_OK, _campaign_epilogue
    from repro.harness.parallel import FanoutReport
    from repro.harness.supervisor import TaskRecord

    args = argparse.Namespace(resume=False)
    report = FanoutReport()
    assert _campaign_epilogue(args, report, []) == EXIT_OK
    bad = TaskRecord(index=0, key="k", label="t", state="quarantined")
    bad.quarantine_reason = "exhausted 3 attempt(s)"
    assert _campaign_epilogue(args, report, [bad]) == EXIT_INFRA
    assert "infra failure" in capsys.readouterr().err
