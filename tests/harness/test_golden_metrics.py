"""Golden regression tests for the paper's headline metrics.

Freezes the 2-PoD TC results behind ``benchmarks/results/fig4_*`` and
``fig5_*`` (convergence time, blast radius, control overhead) into
tier-1: the simulator is bit-for-bit deterministic per seed, so these
exact values must reproduce on every machine — any drift means a
behavioral change in the engine, a protocol stack or the experiment
harness, and must fail fast here rather than silently shift the
regenerated figures.

The table is keyed by stack *registry names*: the registry-ported
builtin plugins must reproduce the exact values measured before the
stack-plugin refactor, which is what makes that refactor a refactor.

If a change is *intentional* (a protocol fix, a new counting rule),
regenerate: ``PYTHONPATH=src python -m pytest benchmarks -k "fig4 or
fig5"`` and update GOLDEN below alongside the result files.
"""

from __future__ import annotations

import pytest

from repro.topology.clos import two_pod_params
from repro.stacks import StackKind, resolve_spec
from repro.harness.experiments import run_failure_experiment

# (stack, case) -> (convergence_us, control_bytes, update_count,
#                   blast_routers) at seed 0 — the values behind
# benchmarks/results/fig4_convergence_2pod.txt and
# fig5_blast_radius_2pod.txt.
BLAST_WIDE_MTP = ["L-1-2", "L-2-1", "L-2-2", "S-1-1", "S-2-1", "T-1", "T-2"]
BLAST_WIDE_BGP = ["L-1-1", "L-1-2", "L-2-1", "L-2-2", "S-1-1", "S-2-1",
                  "T-1", "T-2"]
BLAST_NARROW_MTP = ["S-2-1", "T-1"]
BLAST_NARROW_BGP = ["S-1-1", "S-2-1", "T-1"]

GOLDEN = {
    ("mtp", "TC1"): (95107, 123, 7, BLAST_WIDE_MTP),
    ("mtp", "TC2"): (612, 123, 7, BLAST_WIDE_MTP),
    ("mtp", "TC3"): (94695, 18, 1, BLAST_NARROW_MTP),
    ("mtp", "TC4"): (200, 18, 1, BLAST_NARROW_MTP),
    ("bgp", "TC1"): (2290827, 651, 7, BLAST_WIDE_BGP),
    ("bgp", "TC2"): (1012, 651, 7, BLAST_WIDE_BGP),
    ("bgp", "TC3"): (2290322, 97, 1, BLAST_NARROW_BGP),
    ("bgp", "TC4"): (0, 97, 1, BLAST_NARROW_BGP),
    ("bgp-bfd", "TC1"): (237422, 651, 7, BLAST_WIDE_BGP),
    ("bgp-bfd", "TC2"): (1012, 651, 7, BLAST_WIDE_BGP),
    ("bgp-bfd", "TC3"): (238177, 97, 1, BLAST_NARROW_BGP),
    ("bgp-bfd", "TC4"): (0, 97, 1, BLAST_NARROW_BGP),
}


@pytest.mark.parametrize("stack,case", sorted(GOLDEN))
def test_golden_2pod_failure_metrics(stack, case):
    expected_conv, expected_bytes, expected_updates, expected_blast = \
        GOLDEN[(stack, case)]
    result = run_failure_experiment(two_pod_params(), stack, case, seed=0)
    assert result.stack == stack
    assert result.convergence_us == expected_conv, (
        f"fig4 drift: {stack} {case} convergence "
        f"{result.convergence_us} us != golden {expected_conv} us")
    assert result.control_bytes == expected_bytes, (
        f"fig6 drift: {stack} {case} control overhead")
    assert result.update_count == expected_updates
    assert result.blast_routers == expected_blast, (
        f"fig5 drift: {stack} {case} blast radius")


def test_legacy_enum_resolves_to_same_golden_run():
    """StackKind members and registry names must be the *same* stack:
    identical spec, hence identical cache key and identical run."""
    for kind in StackKind:
        assert resolve_spec(kind) == resolve_spec(kind.stack_name)
    enum_result = run_failure_experiment(two_pod_params(), StackKind.MTP,
                                         "TC4", seed=0)
    name_result = run_failure_experiment(two_pod_params(), "mtp",
                                         "TC4", seed=0)
    assert enum_result == name_result


def test_golden_shape_invariants():
    """The paper's qualitative ordering, restated over the golden table
    so a wholesale regeneration still has to respect the physics."""
    conv = {k: v[0] for k, v in GOLDEN.items()}
    blast = {k: len(v[3]) for k, v in GOLDEN.items()}
    for case in ("TC1", "TC3"):
        assert conv[("mtp", case)] \
            < conv[("bgp-bfd", case)] \
            < conv[("bgp", case)]
    for stack in ("mtp", "bgp", "bgp-bfd"):
        # pod-internal failures (TC3/TC4) touch fewer routers than
        # spine-facing ones (TC1/TC2)
        assert blast[(stack, "TC3")] < blast[(stack, "TC1")]
        # MR-MTP's blast radius never exceeds BGP's
        for case in ("TC1", "TC2", "TC3", "TC4"):
            assert blast[("mtp", case)] <= blast[(stack, case)]
