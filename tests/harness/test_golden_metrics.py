"""Golden regression tests for the paper's headline metrics.

Freezes the 2-PoD TC results behind ``benchmarks/results/fig4_*`` and
``fig5_*`` (convergence time, blast radius, control overhead) into
tier-1: the simulator is bit-for-bit deterministic per seed, so these
exact values must reproduce on every machine — any drift means a
behavioral change in the engine, a protocol stack or the experiment
harness, and must fail fast here rather than silently shift the
regenerated figures.

If a change is *intentional* (a protocol fix, a new counting rule),
regenerate: ``PYTHONPATH=src python -m pytest benchmarks -k "fig4 or
fig5"`` and update GOLDEN below alongside the result files.
"""

from __future__ import annotations

import pytest

from repro.topology.clos import two_pod_params
from repro.harness.experiments import StackKind, run_failure_experiment

# (stack, case) -> (convergence_us, control_bytes, update_count,
#                   blast_routers) at seed 0 — the values behind
# benchmarks/results/fig4_convergence_2pod.txt and
# fig5_blast_radius_2pod.txt.
BLAST_WIDE_MTP = ["L-1-2", "L-2-1", "L-2-2", "S-1-1", "S-2-1", "T-1", "T-2"]
BLAST_WIDE_BGP = ["L-1-1", "L-1-2", "L-2-1", "L-2-2", "S-1-1", "S-2-1",
                  "T-1", "T-2"]
BLAST_NARROW_MTP = ["S-2-1", "T-1"]
BLAST_NARROW_BGP = ["S-1-1", "S-2-1", "T-1"]

GOLDEN = {
    (StackKind.MTP, "TC1"): (95107, 123, 7, BLAST_WIDE_MTP),
    (StackKind.MTP, "TC2"): (612, 123, 7, BLAST_WIDE_MTP),
    (StackKind.MTP, "TC3"): (94695, 18, 1, BLAST_NARROW_MTP),
    (StackKind.MTP, "TC4"): (200, 18, 1, BLAST_NARROW_MTP),
    (StackKind.BGP, "TC1"): (2290827, 651, 7, BLAST_WIDE_BGP),
    (StackKind.BGP, "TC2"): (1012, 651, 7, BLAST_WIDE_BGP),
    (StackKind.BGP, "TC3"): (2290322, 97, 1, BLAST_NARROW_BGP),
    (StackKind.BGP, "TC4"): (0, 97, 1, BLAST_NARROW_BGP),
    (StackKind.BGP_BFD, "TC1"): (237422, 651, 7, BLAST_WIDE_BGP),
    (StackKind.BGP_BFD, "TC2"): (1012, 651, 7, BLAST_WIDE_BGP),
    (StackKind.BGP_BFD, "TC3"): (238177, 97, 1, BLAST_NARROW_BGP),
    (StackKind.BGP_BFD, "TC4"): (0, 97, 1, BLAST_NARROW_BGP),
}


@pytest.mark.parametrize("kind,case", sorted(
    GOLDEN, key=lambda k: (k[0].value, k[1])))
def test_golden_2pod_failure_metrics(kind, case):
    expected_conv, expected_bytes, expected_updates, expected_blast = \
        GOLDEN[(kind, case)]
    result = run_failure_experiment(two_pod_params(), kind, case, seed=0)
    assert result.convergence_us == expected_conv, (
        f"fig4 drift: {kind.value} {case} convergence "
        f"{result.convergence_us} us != golden {expected_conv} us")
    assert result.control_bytes == expected_bytes, (
        f"fig6 drift: {kind.value} {case} control overhead")
    assert result.update_count == expected_updates
    assert result.blast_routers == expected_blast, (
        f"fig5 drift: {kind.value} {case} blast radius")


def test_golden_shape_invariants():
    """The paper's qualitative ordering, restated over the golden table
    so a wholesale regeneration still has to respect the physics."""
    conv = {k: v[0] for k, v in GOLDEN.items()}
    blast = {k: len(v[3]) for k, v in GOLDEN.items()}
    for case in ("TC1", "TC3"):
        assert conv[(StackKind.MTP, case)] \
            < conv[(StackKind.BGP_BFD, case)] \
            < conv[(StackKind.BGP, case)]
    for kind in (StackKind.MTP, StackKind.BGP, StackKind.BGP_BFD):
        # pod-internal failures (TC3/TC4) touch fewer routers than
        # spine-facing ones (TC1/TC2)
        assert blast[(kind, "TC3")] < blast[(kind, "TC1")]
        # MR-MTP's blast radius never exceeds BGP's
        for case in ("TC1", "TC2", "TC3", "TC4"):
            assert blast[(StackKind.MTP, case)] <= blast[(kind, case)]
