"""Multi-seed aggregation."""

from __future__ import annotations

import pytest

from repro.core.config import MtpTimers
from repro.harness.analysis import (
    Aggregate,
    compare_stacks,
    failure_study,
    speedup,
)
from repro.harness.experiments import StackKind, StackTimers
from repro.topology.clos import two_pod_params


class TestAggregate:
    def test_of_basic_stats(self):
        agg = Aggregate.of([1.0, 2.0, 3.0])
        assert agg.mean == 2.0
        assert agg.minimum == 1.0 and agg.maximum == 3.0
        assert agg.n == 3
        assert agg.stdev == pytest.approx(1.0)

    def test_single_value_has_zero_stdev(self):
        agg = Aggregate.of([5.0])
        assert agg.stdev == 0.0 and agg.n == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Aggregate.of([])

    def test_str_format(self):
        assert "±" in str(Aggregate.of([1.0, 2.0]))

    def test_speedup(self):
        assert speedup(Aggregate.of([10.0]), Aggregate.of([2.0])) == 5.0
        with pytest.raises(ZeroDivisionError):
            speedup(Aggregate.of([1.0]), Aggregate.of([0.0]))


class TestFailureStudy:
    def test_seeds_vary_with_timing_noise(self):
        timers = StackTimers(mtp=MtpTimers(jitter=0.3))
        study = failure_study(two_pod_params(), StackKind.MTP, "TC1",
                              seeds=range(3), timers=timers)
        assert study.convergence_ms.n == 3
        # the settle-phase draw plus hello jitter must produce variance
        assert study.convergence_ms.stdev > 0
        # but the deterministic metrics stay fixed
        assert study.control_bytes.stdev == 0
        assert study.blast_radius.stdev == 0

    def test_same_seed_reproduces_exactly(self):
        a = failure_study(two_pod_params(), StackKind.MTP, "TC1", seeds=[7])
        b = failure_study(two_pod_params(), StackKind.MTP, "TC1", seeds=[7])
        assert a.convergence_ms.mean == b.convergence_ms.mean
        assert a.runs[0].blast_routers == b.runs[0].blast_routers

    def test_compare_stacks_orders_protocols(self):
        studies = compare_stacks(two_pod_params(), "TC1", seeds=[0, 1],
                                 stacks=("mtp", "bgp"))
        assert (studies["mtp"].convergence_ms.mean
                < studies["bgp"].convergence_ms.mean)

    def test_compare_stacks_accepts_legacy_enum_handles(self):
        studies = compare_stacks(two_pod_params(), "TC4", seeds=[0],
                                 stacks=(StackKind.MTP,))
        assert studies[StackKind.MTP].stack == "mtp"
