"""Determinism property tests for the parallel experiment runner.

For a matrix of (stack, topology, seed): the run digest of every
task must be identical across repeated serial runs, across serial vs
process-pool execution, and across different worker counts.  Any
divergence means a task leaked state (wall clock, globals, unseeded
randomness) and would silently corrupt fanned-out sweeps.
"""

from __future__ import annotations

import pytest

from repro.topology.clos import two_pod_params
from repro.stacks import resolve_spec
from repro.harness.experiments import (
    ExperimentSpec,
    StackKind,
    run_experiment_task,
)
from repro.harness.parallel import (
    DeterminismError,
    FanoutReport,
    assert_fanout_deterministic,
    default_chunk_size,
    execute_tasks,
    resolve_jobs,
)
from repro.harness.sweep import run_sweep_point, sweep_specs


def _square(x: int) -> int:
    """Trivial top-level worker (the pool needs to pickle it)."""
    return x * x


def _digest(outcome) -> str:
    return outcome.digest


# ----------------------------------------------------------------------
# sweep fan-out
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind,seed", [
    (StackKind.MTP, 0),
    (StackKind.MTP, 7),
    (StackKind.BGP, 0),
])
def test_sweep_digests_serial_vs_parallel(kind, seed):
    specs = sweep_specs(two_pod_params(), kind, seed=seed)[:3]
    serial_a = [run_sweep_point(s) for s in specs]
    serial_b = [run_sweep_point(s) for s in specs]
    assert [o.digest for o in serial_a] == [o.digest for o in serial_b]
    # the guard itself re-runs serially and through a 2-worker pool
    digests = assert_fanout_deterministic(specs, run_sweep_point, _digest,
                                          jobs=2)
    assert digests == [o.digest for o in serial_a]
    # results (not just digests) also match byte for byte
    assert [o.result for o in serial_a] == [o.result for o in serial_b]


def test_sweep_digests_across_worker_counts():
    specs = sweep_specs(two_pod_params(), StackKind.MTP)[:4]
    by_jobs = {
        jobs: [o.digest for o in execute_tasks(specs, run_sweep_point,
                                               jobs=jobs)]
        for jobs in (1, 2, 3)
    }
    assert by_jobs[1] == by_jobs[2] == by_jobs[3]
    # distinct failure points must not collide
    assert len(set(by_jobs[1])) == len(specs)


# ----------------------------------------------------------------------
# multi-seed experiment batches
# ----------------------------------------------------------------------
@pytest.mark.parametrize("stack", ["mtp", "bgp"])
def test_experiment_batch_digests_deterministic(stack):
    specs = [
        ExperimentSpec(params=two_pod_params(), stack=resolve_spec(stack),
                       case_name="TC1", seed=seed)
        for seed in (0, 1)
    ]
    digests = assert_fanout_deterministic(specs, run_experiment_task,
                                          _digest, jobs=2)
    assert len(set(digests)) == 2  # different seeds, different runs


def test_experiment_digest_differs_across_seeds_and_cases():
    def outcome(case, seed):
        return run_experiment_task(ExperimentSpec(
            params=two_pod_params(), stack=resolve_spec("mtp"),
            case_name=case, seed=seed))

    base = outcome("TC1", 0)
    assert base.digest == outcome("TC1", 0).digest
    assert base.digest != outcome("TC1", 1).digest
    assert base.digest != outcome("TC2", 0).digest


# ----------------------------------------------------------------------
# runner mechanics
# ----------------------------------------------------------------------
def test_execute_tasks_preserves_order():
    specs = sweep_specs(two_pod_params(), StackKind.MTP)[:4]
    outcomes = execute_tasks(specs, run_sweep_point, jobs=2)
    assert [o.result.point for o in outcomes] == [s.point for s in specs]


def test_guard_raises_on_divergence():
    specs = sweep_specs(two_pod_params(), StackKind.MTP)[:2]
    calls = iter(("a", "a", "a", "b"))  # serial: a,a — parallel: a,b

    def flaky_digest(_outcome) -> str:
        return next(calls)

    with pytest.raises(DeterminismError):
        # jobs=1 forces the "parallel" leg inline too, so the fake
        # digest sequence above is consumed deterministically
        assert_fanout_deterministic(specs, run_sweep_point, flaky_digest,
                                    jobs=1)


def test_resolve_jobs_and_chunking():
    assert resolve_jobs(3) == 3
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(0) >= 1
    with pytest.raises(ValueError):
        resolve_jobs(-1)
    assert default_chunk_size(0, 4) == 1
    assert default_chunk_size(100, 4) == 6


# ----------------------------------------------------------------------
# oversubscription fallback: on a host with no spare cores for the
# requested worker count, the pool is pure overhead — the fan-out must
# quietly run inline and say so in the report
# ----------------------------------------------------------------------
def test_oversubscribed_fanout_falls_back_to_serial(monkeypatch):
    monkeypatch.setattr("repro.harness.parallel.os.cpu_count", lambda: 1)
    report = FanoutReport()
    outcomes = execute_tasks([1, 2, 3], _square, jobs=2, report=report)
    assert outcomes == [1, 4, 9]
    assert report.jobs == 1  # fell back
    assert any("oversubscribe" in note for note in report.notes), report.notes


def test_fanout_keeps_pool_when_cores_are_spare(monkeypatch):
    monkeypatch.setattr("repro.harness.parallel.os.cpu_count", lambda: 8)
    report = FanoutReport()
    outcomes = execute_tasks([1, 2, 3], _square, jobs=2, report=report)
    assert outcomes == [1, 4, 9]
    assert report.jobs == 2
    assert report.notes == []


def test_allow_oversubscribe_forces_the_pool(monkeypatch):
    """The determinism guard compares pool vs serial, so it must be able
    to force the pool even on a 1-core CI host."""
    monkeypatch.setattr("repro.harness.parallel.os.cpu_count", lambda: 1)
    report = FanoutReport()
    outcomes = execute_tasks([1, 2, 3], _square, jobs=2, report=report,
                             allow_oversubscribe=True)
    assert outcomes == [1, 4, 9]
    assert report.jobs == 2  # pool ran despite the 1-core host
    assert report.notes == []


def test_oversubscribed_fallback_is_result_identical(monkeypatch):
    """Falling back must be invisible in the results: same outcomes, in
    order, as the pool would have produced."""
    monkeypatch.setattr("repro.harness.parallel.os.cpu_count", lambda: 1)
    serial = execute_tasks(list(range(7)), _square, jobs=2)
    forced = execute_tasks(list(range(7)), _square, jobs=2,
                           allow_oversubscribe=True)
    assert serial == forced
