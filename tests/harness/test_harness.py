"""Harness pieces: failure injection, convergence monitor, metrics,
path tracing."""

from __future__ import annotations

import pytest

from repro.harness.convergence import ConvergenceMonitor, converge_from_cold
from repro.harness.deploy import deploy_bgp, deploy_mtp
from repro.harness.failures import FailureInjector
from repro.harness.metrics import (
    blast_radius,
    control_overhead_bytes,
    snapshot_table_change_counts,
)
from repro.harness.pathtrace import (
    find_crossing_flow,
    path_crosses_link,
    trace_path,
)
from repro.net.world import World
from repro.sim.units import MILLISECOND, SECOND
from repro.topology.clos import build_folded_clos, two_pod_params


@pytest.fixture(scope="module")
def mtp_fabric():
    world = World(seed=5)
    topo = build_folded_clos(two_pod_params(), world=world)
    dep = deploy_mtp(topo)
    dep.start()
    converge_from_cold(world, dep, dep.trees_complete)
    return world, topo, dep


class TestFailureInjector:
    def test_records_exact_time(self):
        world = World(seed=0)
        topo = build_folded_clos(two_pod_params(), world=world)
        injector = FailureInjector(world)
        injector.fail_interface(topo.tors[0][0][0], "eth1", at=123_456)
        world.run(until=200_000)
        assert injector.last_failure_time() == 123_456
        assert not topo.node(topo.tors[0][0][0]).interfaces["eth1"].admin_up

    def test_flap_schedule(self):
        world = World(seed=0)
        topo = build_folded_clos(two_pod_params(), world=world)
        injector = FailureInjector(world)
        injector.flap_interface(topo.tors[0][0][0], "eth1",
                                period_us=10_000, count=3, start_at=0)
        world.run(until=100_000)
        kinds = [e.kind for e in injector.events]
        assert kinds == ["down", "up"] * 3

    def test_last_failure_requires_event(self):
        injector = FailureInjector(World(seed=0))
        with pytest.raises(ValueError):
            injector.last_failure_time()


class TestBlastRadius:
    def test_no_change_no_blast(self, mtp_fabric):
        world, topo, dep = mtp_fabric
        before = snapshot_table_change_counts(dep.forwarding_tables())
        assert blast_radius(before, dep.forwarding_tables()) == []

    def test_exclude_filter(self):
        class FakeTable:
            def __init__(self, n):
                self.change_count = n

        tables = {"a": FakeTable(2), "b": FakeTable(1)}
        before = {"a": 1, "b": 1}
        assert blast_radius(before, tables) == ["a"]
        assert blast_radius(before, tables, exclude={"a"}) == []


class TestConvergenceMonitor:
    def test_counts_only_armed_window_and_categories(self):
        world = World(seed=0)
        mon = ConvergenceMonitor(world, ("mtp.update.tx",))
        world.trace.emit("n", "mtp.update.tx", "early", bytes=10)
        mon.arm()
        world.sim.schedule_at(100, lambda: world.trace.emit(
            "n", "mtp.update.tx", "counted", bytes=20))
        world.sim.schedule_at(200, lambda: world.trace.emit(
            "n", "mtp.keepalive.tx", "ignored", bytes=15))
        world.run()
        assert mon.update_count == 1
        assert mon.update_bytes == 20
        assert mon.convergence_time_us() == 100

    def test_min_wait_blocks_early_return(self):
        world = World(seed=0)
        mon = ConvergenceMonitor(world, ("x",))
        mon.arm()
        # a late event at 3 s would be missed with quiet=1 s alone
        world.sim.schedule_at(3 * SECOND, lambda: world.trace.emit(
            "n", "x", "late", bytes=1))
        mon.run_until_quiet(quiet_us=1 * SECOND, max_wait_us=10 * SECOND,
                            min_wait_us=4 * SECOND)
        assert mon.update_count == 1

    def test_control_overhead_helper(self):
        world = World(seed=0)
        world.trace.emit("n", "bgp.update.tx", "a", bytes=93)
        world.sim.schedule_at(10, lambda: world.trace.emit(
            "n", "bgp.update.tx", "b", bytes=100))
        world.run()
        assert control_overhead_bytes(world.trace, ("bgp.update.tx",),
                                      since=0) == 193
        assert control_overhead_bytes(world.trace, ("bgp.update.tx",),
                                      since=5) == 100


class TestPathTrace:
    def test_mtp_path_is_valley_free(self, mtp_fabric):
        world, topo, dep = mtp_fabric
        src = topo.first_server_of(topo.tors[0][0][0])
        dst = topo.first_server_of(topo.tors[0][1][1])
        path = trace_path(dep, src, dst, src_port=40000)
        assert path[0] == src and path[-1] == dst
        # server, ToR, agg, top, agg, ToR, server
        assert len(path) == 7
        tiers = [topo.node(n).tier for n in path]
        assert tiers == [0, 1, 2, 3, 2, 1, 0]

    def test_intra_pod_path_turns_at_agg(self, mtp_fabric):
        world, topo, dep = mtp_fabric
        src = topo.first_server_of(topo.tors[0][0][0])
        dst = topo.first_server_of(topo.tors[0][0][1])
        path = trace_path(dep, src, dst, src_port=40000)
        tiers = [topo.node(n).tier for n in path]
        assert tiers == [0, 1, 2, 1, 0], "intra-pod traffic must not hit tops"

    def test_flows_spread_over_planes(self, mtp_fabric):
        world, topo, dep = mtp_fabric
        src = topo.first_server_of(topo.tors[0][0][0])
        dst = topo.first_server_of(topo.tors[0][1][1])
        first_hops = {
            trace_path(dep, src, dst, src_port=p)[2]
            for p in range(40000, 40064)
        }
        assert len(first_hops) == 2, "ECMP must use both aggs"

    def test_find_crossing_flow(self, mtp_fabric):
        world, topo, dep = mtp_fabric
        src = topo.first_server_of(topo.tors[0][0][0])
        dst = topo.first_server_of(topo.tors[0][1][1])
        tor, agg = topo.tors[0][0][0], topo.aggs[0][0][0]
        port = find_crossing_flow(dep, src, dst, tor, agg)
        assert port is not None
        path = trace_path(dep, src, dst, port)
        assert path_crosses_link(path, tor, agg)

    def test_bgp_paths_match_clos_shape(self):
        world = World(seed=6)
        topo = build_folded_clos(two_pod_params(), world=world)
        dep = deploy_bgp(topo)
        dep.start()
        converge_from_cold(
            world, dep,
            lambda: dep.all_established() and dep.fib_complete(),
        )
        src = topo.first_server_of(topo.tors[0][0][0])
        dst = topo.first_server_of(topo.tors[0][1][1])
        path = trace_path(dep, src, dst, src_port=40000)
        tiers = [topo.node(n).tier for n in path]
        assert tiers == [0, 1, 2, 3, 2, 1, 0]
