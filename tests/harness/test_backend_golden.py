"""Cross-backend golden regression: the timer wheel must be invisible.

The wheel scheduler is a pure performance substitution — same
(time, priority, seq) total order, same tombstone semantics — so every
run digest and every golden metric must come out byte-identical whether
the engine runs on the wheel or the legacy heap, and whether tasks run
inline, through the process pool, or under the supervisor.  Any
divergence here is an ordering bug in the wheel, not a tolerance issue:
there is no epsilon.
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import (
    ExperimentSpec,
    run_experiment_task,
)
from repro.harness.parallel import assert_fanout_deterministic
from repro.scenario import (
    ScenarioRunSpec,
    get_scenario,
    run_scenario_task,
    scenario_suite_specs,
)
from repro.scenario.runner import run_scenario_suite
from repro.sim.engine import BACKEND_ENV_VAR, BACKENDS, HEAP_BACKEND
from repro.stacks import resolve_spec
from repro.topology.clos import two_pod_params

from tests.harness.test_golden_metrics import GOLDEN

# A representative slice of the golden table: the headline wide-blast
# case and a narrow fast-converging one, on the paper's stack and on
# the BGP baseline.  The full table runs in test_golden_metrics; here
# each case runs twice (once per backend), so we keep the slice small.
CASES = [("mtp", "TC1"), ("mtp", "TC4"), ("bgp-bfd", "TC4")]


def _experiment_spec(stack: str, case: str) -> ExperimentSpec:
    return ExperimentSpec(params=two_pod_params(),
                          stack=resolve_spec(stack),
                          case_name=case, seed=0)


def _scenario_spec(name: str, stack: str = "mtp") -> ScenarioRunSpec:
    return ScenarioRunSpec(params=two_pod_params(),
                           stack=resolve_spec(stack),
                           scenario=get_scenario(name), seed=0)


@pytest.mark.parametrize("stack,case", CASES)
def test_experiment_digest_identical_on_both_backends(
        stack, case, monkeypatch):
    outcomes = {}
    for backend in BACKENDS:
        monkeypatch.setenv(BACKEND_ENV_VAR, backend)
        outcomes[backend] = run_experiment_task(_experiment_spec(stack, case))
    digests = {b: o.digest for b, o in outcomes.items()}
    assert len(set(digests.values())) == 1, (
        f"{stack} {case}: run digests diverge across engine backends: "
        f"{digests}")
    # and both reproduce the frozen golden metrics exactly
    conv, ctrl_bytes, updates, blast = GOLDEN[(stack, case)]
    for backend, outcome in outcomes.items():
        result = outcome.result
        assert result.convergence_us == conv, (
            f"{backend} backend drifted from golden convergence on "
            f"{stack} {case}")
        assert result.control_bytes == ctrl_bytes
        assert result.update_count == updates
        assert result.blast_routers == blast


def test_scenario_digest_identical_on_both_backends(monkeypatch):
    digests = {}
    for backend in BACKENDS:
        monkeypatch.setenv(BACKEND_ENV_VAR, backend)
        digests[backend] = run_scenario_task(_scenario_spec("tc1")).digest
    assert len(set(digests.values())) == 1, (
        f"scenario tc1 digests diverge across backends: {digests}")


def test_scenario_library_serial_vs_pool_on_wheel():
    """The determinism guard, on the wheel backend: serial and jobs=2
    pool execution of a scenario slice must produce identical digests
    (the guard forces the pool even on a 1-core host)."""
    specs = scenario_suite_specs(
        two_pod_params(),
        [get_scenario("tc2"), get_scenario("tc4")],
        ["mtp"],
    )
    digests = assert_fanout_deterministic(
        specs, run_scenario_task, lambda o: o.digest, jobs=2)
    assert len(digests) == len(specs)


def test_supervised_suite_matches_serial_across_backends(monkeypatch):
    """--jobs 2 under the supervisor (child process per attempt) must
    reproduce the inline serial digests, on both backends, and the two
    backends must agree with each other."""
    scenarios = [get_scenario("tc4")]
    per_backend = {}
    for backend in BACKENDS:
        monkeypatch.setenv(BACKEND_ENV_VAR, backend)
        serial = [run_scenario_task(s).digest for s in scenario_suite_specs(
            two_pod_params(), scenarios, ["mtp"])]
        from repro.harness.supervisor import RetryPolicy
        supervised = run_scenario_suite(
            two_pod_params(), scenarios, ["mtp"], jobs=2,
            policy=RetryPolicy(max_attempts=1))
        assert [o.digest for o in supervised] == serial, (
            f"supervised jobs=2 diverged from serial on {backend}")
        per_backend[backend] = serial
    assert per_backend[HEAP_BACKEND] == per_backend[
        [b for b in BACKENDS if b != HEAP_BACKEND][0]], (
        f"backends disagree on supervised suite digests: {per_backend}")
