"""Coverage for FailureInjector's previously untested paths:
``flap_interface``, ``cut_link``/``restore_link``, and MR-MTP
re-acceptance after a restore (the Slow-to-Accept gate of section IV.B).
"""

from __future__ import annotations

import pytest

from repro.net.world import World
from repro.sim.units import MILLISECOND, SECOND
from repro.topology.clos import two_pod_params
from repro.core.neighbor import NeighborState
from repro.harness.experiments import StackKind, build_and_converge
from repro.harness.failures import FailureInjector, UnknownTargetError


@pytest.fixture
def pair():
    world = World(seed=1)
    a = world.add_node("A", tier=1)
    b = world.add_node("B", tier=1)
    link = world.connect(a, b)
    return world, link


# ----------------------------------------------------------------------
# flap_interface
# ----------------------------------------------------------------------
def test_flap_schedules_alternating_transitions(pair):
    world, link = pair
    injector = FailureInjector(world)
    injector.flap_interface("A", link.end_a.name, period_us=10_000, count=3)
    world.run()
    assert [e.kind for e in injector.events] == ["down", "up"] * 3
    assert [e.time for e in injector.events] == [0, 10_000, 20_000, 30_000,
                                                 40_000, 50_000]
    assert link.end_a.admin_up  # the flap ends with the interface up


def test_flap_asymmetric_windows(pair):
    world, link = pair
    injector = FailureInjector(world)
    injector.flap_interface("A", link.end_a.name, period_us=5_000, count=2,
                            start_at=1_000, up_period_us=20_000)
    world.run()
    assert [e.time for e in injector.events] == [1_000, 6_000, 26_000,
                                                 31_000]
    assert injector.last_failure_time() == 26_000


# ----------------------------------------------------------------------
# cut_link / restore_link
# ----------------------------------------------------------------------
def test_cut_link_downs_both_ends(pair):
    world, link = pair
    injector = FailureInjector(world)
    injector.cut_link("A", "B")
    world.run()
    assert not link.end_a.admin_up and not link.end_b.admin_up
    assert sorted(e.node for e in injector.events) == ["A", "B"]
    assert {e.kind for e in injector.events} == {"down"}

    injector.restore_link("A", "B")
    world.run()
    assert link.end_a.admin_up and link.end_b.admin_up
    assert [e.kind for e in injector.events].count("up") == 2


def test_cut_link_scheduled_at_absolute_time(pair):
    world, link = pair
    injector = FailureInjector(world)
    injector.cut_link("A", "B", at=7_000)
    world.run()
    assert all(e.time == 7_000 for e in injector.events)


def test_cut_unknown_link_raises(pair):
    world, _ = pair
    world.add_node("C", tier=1)
    injector = FailureInjector(world)
    with pytest.raises(ValueError):
        injector.cut_link("A", "C")
    with pytest.raises(ValueError):
        injector.restore_link("A", "C")


def test_last_failure_time_requires_a_failure(pair):
    world, _ = pair
    injector = FailureInjector(world)
    with pytest.raises(ValueError):
        injector.last_failure_time()


# ----------------------------------------------------------------------
# restore after Slow-to-Accept: the MR-MTP neighbor must *not* come back
# on the first hello, only after accept_hellos consecutive ones
# ----------------------------------------------------------------------
def test_restore_link_reacceptance_is_slow_to_accept():
    world, topo, deployment = build_and_converge(
        two_pod_params(), StackKind.MTP)
    tor, agg = topo.tors[0][0][0], topo.aggs[0][0][0]
    link = world.find_link(tor, agg)
    agg_iface = (link.end_a if link.end_a.node.name == agg
                 else link.end_b)
    neighbor = deployment.mtp_nodes[agg].neighbors[agg_iface.name]
    timers = deployment.mtp_nodes[agg].timers
    assert neighbor.up

    injector = FailureInjector(world)
    injector.cut_link(tor, agg)
    world.run_for(2 * timers.dead_us)
    assert neighbor.state is NeighborState.DEAD
    assert neighbor.times_died == 1

    injector.restore_link(tor, agg)
    # well under accept_hellos * hello interval: hellos are flowing
    # again but the gate must still be closed
    world.run_for(timers.hello_us // 2)
    assert not neighbor.up
    # after enough consecutive hellos the neighbor is accepted back
    world.run_for(1 * SECOND)
    assert neighbor.up
    # and the fabric is whole again
    world.run_for(1 * SECOND)
    assert deployment.trees_complete()


def test_flap_mid_probation_restarts_acceptance_count():
    world, topo, deployment = build_and_converge(
        two_pod_params(), StackKind.MTP)
    tor, agg = topo.tors[0][0][0], topo.aggs[0][0][0]
    link = world.find_link(tor, agg)
    agg_iface = (link.end_a if link.end_a.node.name == agg
                 else link.end_b)
    neighbor = deployment.mtp_nodes[agg].neighbors[agg_iface.name]
    timers = deployment.mtp_nodes[agg].timers

    injector = FailureInjector(world)
    injector.cut_link(tor, agg)
    world.run_for(2 * timers.dead_us)
    assert neighbor.state is NeighborState.DEAD

    # restore, let a hello or two through, then flap the local port:
    # the consecutive count must reset
    injector.restore_link(tor, agg)
    world.run_for(timers.hello_us + timers.hello_us // 2)
    injector.fail_interface(agg, agg_iface.name)
    world.run_for(10 * MILLISECOND)
    assert not neighbor.up
    assert neighbor._consecutive == 0
    injector.restore_interface(agg, agg_iface.name)
    world.run_for(1 * SECOND)
    assert neighbor.up


# ----------------------------------------------------------------------
# up-front target validation
# ----------------------------------------------------------------------
def test_unknown_node_raises_descriptive_error(pair):
    world, _ = pair
    injector = FailureInjector(world)
    with pytest.raises(UnknownTargetError, match="unknown node 'C'"):
        injector.fail_interface("C", "eth0")
    with pytest.raises(UnknownTargetError, match="the world has: A, B"):
        injector.fail_node("C")


def test_unknown_interface_raises_descriptive_error(pair):
    world, link = pair
    injector = FailureInjector(world)
    with pytest.raises(UnknownTargetError,
                       match="node A has no interface 'eth99'"):
        injector.fail_interface("A", "eth99")
    with pytest.raises(UnknownTargetError, match=link.end_b.name):
        injector.restore_interface("B", "nope")


def test_scheduled_injection_validates_up_front(pair):
    """A bad target fails at scheduling time, not deep inside the
    event loop thousands of simulated microseconds later."""
    world, _ = pair
    injector = FailureInjector(world)
    with pytest.raises(UnknownTargetError):
        injector.fail_interface("A", "eth99", at=world.sim.now + 10_000)
    assert injector.events == []
    world.run()  # nothing latent was scheduled


def test_unknown_target_error_is_a_key_error(pair):
    world, _ = pair
    injector = FailureInjector(world)
    with pytest.raises(KeyError):  # pre-existing catchers keep working
        injector.fail_node("missing")
    try:
        injector.fail_node("missing")
    except UnknownTargetError as exc:
        assert "missing" in str(exc)  # no KeyError repr-quoting noise


# ----------------------------------------------------------------------
# impair_link / clear_impairment (gray failures)
# ----------------------------------------------------------------------
def test_impair_link_attaches_per_direction(pair):
    from repro.net.impairment import ImpairmentProfile

    world, link = pair
    injector = FailureInjector(world)
    profile = ImpairmentProfile(loss=0.5)
    injector.impair_link("A", link.end_a.name, profile, direction="tx")
    assert link.impairment(link.end_a) is not None
    assert link.impairment(link.end_b) is None
    assert [e.kind for e in injector.events] == ["impair"]

    injector.clear_impairment("A", link.end_a.name, direction="tx")
    assert link.impairment(link.end_a) is None
    assert [e.kind for e in injector.events] == ["impair", "clear"]


def test_impair_link_both_covers_both_senders(pair):
    from repro.net.impairment import ImpairmentProfile

    world, link = pair
    injector = FailureInjector(world)
    injector.impair_link("A", link.end_a.name, ImpairmentProfile(loss=0.1))
    assert link.impairment(link.end_a) is not None
    assert link.impairment(link.end_b) is not None
    # rx from A's point of view = the peer's tx side only
    injector.clear_impairment("A", link.end_a.name, direction="rx")
    assert link.impairment(link.end_a) is not None
    assert link.impairment(link.end_b) is None


def test_impair_scheduled_at_takes_effect_then(pair):
    from repro.net.impairment import ImpairmentProfile

    world, link = pair
    injector = FailureInjector(world)
    injector.impair_link("A", link.end_a.name, ImpairmentProfile(loss=0.2),
                         at=5_000)
    injector.clear_impairment("A", link.end_a.name, at=9_000)
    assert link.impairment(link.end_a) is None  # not yet
    world.run()
    assert link.impairment(link.end_a) is None  # applied, then cleared
    assert [(e.kind, e.time) for e in injector.events] == [
        ("impair", 5_000), ("clear", 9_000)]


def test_impair_validates_targets_and_direction_up_front(pair):
    from repro.net.impairment import ImpairmentProfile

    world, link = pair
    world.add_node("C", tier=1)  # exists but has no interfaces
    injector = FailureInjector(world)
    profile = ImpairmentProfile(loss=0.1)
    with pytest.raises(UnknownTargetError, match="unknown node"):
        injector.impair_link("nope", "eth0", profile)
    with pytest.raises(UnknownTargetError, match="no interface"):
        injector.impair_link("A", "eth99", profile)
    with pytest.raises(ValueError, match="direction must be one of"):
        injector.impair_link("A", link.end_a.name, profile,
                             direction="sideways")
    # a scheduled bad call must fail now, not at fire time
    with pytest.raises(ValueError):
        injector.clear_impairment("A", link.end_a.name,
                                  direction="sideways", at=10_000)
    assert injector.events == []
    world.run()


def test_impair_uncabled_interface_raises():
    from repro.net.impairment import ImpairmentProfile

    world = World(seed=1)
    a = world.add_node("A", tier=1)
    a.add_interface("eth0")
    injector = FailureInjector(world)
    with pytest.raises(UnknownTargetError, match="not cabled"):
        injector.impair_link("A", "eth0", ImpairmentProfile(loss=0.1))
