"""The false-positive chaos suite: grid mechanics, the clean-fabric
zero-FP invariant, determinism (serial == parallel digests), and cache
replay."""

from __future__ import annotations

import pytest

from repro.topology.clos import two_pod_params
from repro.harness.cache import ResultCache
from repro.harness.chaos import (
    ChaosPointSpec,
    chaos_point_key,
    chaos_specs,
    clean_fabric_violations,
    false_positive_thresholds,
    run_chaos_point,
    run_chaos_suite,
    summarize,
)
from repro.harness.parallel import FanoutReport, assert_fanout_deterministic
from repro.stacks import resolve_spec


def _spec(stack="mtp", loss=0.1, **kwargs):
    kwargs.setdefault("window_ms", 1500)
    kwargs.setdefault("traffic_count", 200)
    return ChaosPointSpec(params=two_pod_params(),
                          stack=resolve_spec(stack, None), seed=0,
                          loss=loss, **kwargs)


# ----------------------------------------------------------------------
# single points
# ----------------------------------------------------------------------
@pytest.mark.parametrize("stack", ["mtp", "bgp-bfd"])
def test_clean_fabric_has_zero_false_positives(stack):
    """Loss 0.0 is the suite's control row: a healthy fabric must never
    false-flag, flap, or churn on any stack."""
    result = run_chaos_point(_spec(stack, loss=0.0)).result
    assert result.false_positives == 0
    assert result.flaps == 0
    assert result.route_churn == 0
    assert result.goodput == 1.0


def test_lossy_link_false_flags_quick_to_detect():
    """At 10% loss MR-MTP's one-missed-hello detector false-flags the
    healthy neighbour during the quiet window and pays route churn."""
    result = run_chaos_point(_spec("mtp", loss=0.1, window_ms=3000)).result
    assert result.detections >= result.false_positives > 0
    assert result.flaps > 0
    assert result.route_churn > 0
    assert 0.0 < result.goodput < 1.0


def test_bfd_detect_mult_rides_out_the_same_loss():
    result = run_chaos_point(
        _spec("bgp-bfd", loss=0.1, window_ms=3000)).result
    assert result.false_positives == 0
    assert result.flaps == 0


# ----------------------------------------------------------------------
# grid mechanics and analysis
# ----------------------------------------------------------------------
def test_chaos_specs_expand_stack_major():
    specs = chaos_specs(two_pod_params(), ["mtp", "bgp-bfd"],
                        rates=(0.0, 0.1), seed=3)
    assert [(s.stack.name, s.loss) for s in specs] == [
        ("mtp", 0.0), ("mtp", 0.1), ("bgp-bfd", 0.0), ("bgp-bfd", 0.1)]
    assert all(s.seed == 3 for s in specs)
    # every grid point gets its own cache identity
    assert len({chaos_point_key(s) for s in specs}) == 4


def test_key_depends_on_loss_and_window():
    base = _spec("mtp", loss=0.1)
    assert chaos_point_key(base) == chaos_point_key(_spec("mtp", loss=0.1))
    assert chaos_point_key(base) != chaos_point_key(_spec("mtp", loss=0.2))
    assert chaos_point_key(base) != chaos_point_key(
        _spec("mtp", loss=0.1, window_ms=2500))


def test_threshold_and_violation_analysis():
    from repro.harness.chaos import ChaosResult

    def r(stack, loss, fp):
        return ChaosResult(stack=stack, loss=loss, seed=0, window_ms=1,
                           impaired_link=("t", "a"), false_positives=fp)

    results = [r("mtp", 0.0, 0), r("mtp", 0.05, 2), r("mtp", 0.1, 7),
               r("bgp-bfd", 0.0, 0), r("bgp-bfd", 0.1, 0)]
    assert false_positive_thresholds(results) == {"mtp": 0.05,
                                                  "bgp-bfd": None}
    assert clean_fabric_violations(results) == []
    results.append(r("bgp-bfd", 0.0, 1))
    assert len(clean_fabric_violations(results)) == 1
    text = summarize(results)
    assert "false-positive threshold at loss >= 0.05" in text
    assert "bgp-bfd: no false positives" not in text  # violation row kills it


# ----------------------------------------------------------------------
# determinism and cache replay
# ----------------------------------------------------------------------
def test_chaos_digests_serial_vs_parallel():
    specs = chaos_specs(two_pod_params(), ["mtp"], rates=(0.0, 0.1),
                        window_ms=1500, traffic_count=200)
    digests = assert_fanout_deterministic(specs, run_chaos_point,
                                          lambda o: o.digest, jobs=2)
    assert len(set(digests)) == len(specs)  # distinct points, distinct runs


def test_chaos_suite_replays_from_cache(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    kwargs = dict(rates=(0.0, 0.1), window_ms=1500, traffic_count=200,
                  cache=cache)
    first = FanoutReport()
    a = run_chaos_suite(two_pod_params(), ["mtp"], report=first, **kwargs)
    second = FanoutReport()
    b = run_chaos_suite(two_pod_params(), ["mtp"], report=second, **kwargs)
    assert first.executed == 2 and first.cached == 0
    assert second.executed == 0 and second.cached == 2
    assert [o.digest for o in a] == [o.digest for o in b]
    assert [o.result for o in a] == [o.result for o in b]
