"""Cache schema-3 migration: topology-registry re-keying.

Schema 3 re-keys every task by TopologySpec (registry name + canonical
params) instead of the raw ClosParams dataclass.  Two guarantees:

* schema-2 entries — whatever key they sit under — are ignored cleanly
  and recomputed, never replayed;
* the *results* are unchanged by the re-keying: golden figure metrics
  and run digests reproduce byte-identically through the registry path
  (that is what makes the refactor a refactor).
"""

from __future__ import annotations

import json

from repro.harness.cache import CACHE_SCHEMA, ResultCache, task_key
from repro.harness.experiments import (
    ExperimentSpec,
    encode_experiment_outcome,
    decode_experiment_outcome,
    experiment_task_key,
    run_experiment_task,
)
from repro.harness.parallel import FanoutReport, execute_tasks
from repro.stacks import resolve_spec
from repro.topology import ClosParams, resolve_topology_spec, two_pod_params


def _spec() -> ExperimentSpec:
    return ExperimentSpec(params=two_pod_params(), stack=resolve_spec("mtp"),
                          case_name="TC4", seed=0)


def _entry_path(cache: ResultCache, key: str):
    return cache.root / key[:2] / f"{key}.json"


def test_schema_is_at_least_3():
    # schema 3 introduced the topology-registry re-keying this file
    # covers; later bumps (4: the workload engine) keep its guarantees
    assert CACHE_SCHEMA >= 3


def test_experiment_key_derives_from_topology_spec():
    """Legacy ClosParams call sites and registry-first call sites land
    on the SAME schema-3 key — the normalization happens in the spec."""
    legacy = ExperimentSpec(params=ClosParams(), stack=resolve_spec("mtp"),
                            case_name="TC1", seed=0)
    registry = ExperimentSpec(params=resolve_topology_spec("clos"),
                              stack=resolve_spec("mtp"),
                              case_name="TC1", seed=0)
    assert legacy.params == registry.params
    assert experiment_task_key(legacy) == experiment_task_key(registry)
    # and the old-style component (raw dataclass) keys differently, so
    # schema-2 entries cannot even collide with schema-3 lookups
    old_style = task_key("failure-run", params=ClosParams(),
                         stack="mtp", case="TC1", seed=0)
    assert old_style != experiment_task_key(legacy)


def test_schema2_entry_ignored_and_recomputed(tmp_path):
    """A schema-2 entry planted at the new key must be dropped, the task
    recomputed, and the fresh entry must replay afterwards."""
    cache = ResultCache(tmp_path)
    spec = _spec()
    key = experiment_task_key(spec)
    path = _entry_path(cache, key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(
        {"schema": 2, "key": key,
         "payload": {"stale": "ClosParams-keyed era"}}))

    report = FanoutReport()
    out = execute_tasks([spec], run_experiment_task, cache=cache,
                        key_fn=experiment_task_key,
                        encode=encode_experiment_outcome,
                        decode=decode_experiment_outcome, report=report)
    assert (report.executed, report.cached) == (1, 0)
    assert cache.dropped == 1

    replay_report = FanoutReport()
    replay = execute_tasks([spec], run_experiment_task, cache=cache,
                           key_fn=experiment_task_key,
                           encode=encode_experiment_outcome,
                           decode=decode_experiment_outcome,
                           report=replay_report)
    assert (replay_report.executed, replay_report.cached) == (0, 1)
    assert replay[0].digest == out[0].digest
    assert replay[0].result == out[0].result


def test_golden_digest_identical_across_rekeying(tmp_path):
    """Re-keying must not change the computation: the run digest of a
    cache-mediated registry-path run equals the direct run's digest."""
    direct = run_experiment_task(_spec())
    cache = ResultCache(tmp_path)
    via_cache = execute_tasks([_spec()], run_experiment_task, cache=cache,
                              key_fn=experiment_task_key,
                              encode=encode_experiment_outcome,
                              decode=decode_experiment_outcome)
    assert via_cache[0].digest == direct.digest
    assert via_cache[0].result.convergence_us == direct.result.convergence_us
    # golden fig4 anchor: the registry path reproduces the frozen value
    assert direct.result.convergence_us == 200
