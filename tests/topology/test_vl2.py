"""VL2 plugin: structure, invariants, and protocol behaviour."""

from __future__ import annotations

import pytest

from repro.harness.experiments import build_and_converge
from repro.harness.sweep import check_all_pairs
from repro.topology import (
    TIER_AGG,
    TIER_TOP,
    TIER_TOR,
    build_topology,
    get_topology,
    validate_topology,
)


def _build(**overrides):
    return build_topology(get_topology("vl2").spec(**overrides))


def test_default_build_validates():
    topo = _build()
    validate_topology(topo)
    # 2 pairs x (2 ToR + 2 agg) + 2 intermediates
    assert len(topo.routers()) == 10
    assert len(topo.all_tors()) == 4
    assert len(topo.all_tops()) == 2
    assert not topo.all_supers()


def test_complete_agg_intermediate_bipartite():
    """The wiring that makes VL2 not-a-folded-Clos: every aggregation
    reaches every intermediate (no plane restriction)."""
    topo = _build(num_pairs=3, ints=4)
    validate_topology(topo)
    ints = set(topo.all_tops())
    for agg in topo.all_aggs():
        peers = {iface.peer().node.name
                 for iface in topo.node(agg).interfaces.values()
                 if iface.peer() is not None
                 and iface.peer().node.tier == TIER_TOP}
        assert peers == ints


def test_tors_dual_homed_to_their_pair_only():
    topo = _build()
    for pair_idx, pair_tors in enumerate(topo.tors[0]):
        pair_aggs = set(topo.aggs[0][pair_idx])
        for tor in pair_tors:
            uplinks = {iface.peer().node.name
                       for iface in topo.node(tor).interfaces.values()
                       if iface.peer() is not None
                       and iface.peer().node.tier == TIER_AGG}
            assert uplinks == pair_aggs


def test_tiers_and_ports():
    topo = _build()
    assert topo.node(topo.all_tors()[0]).tier == TIER_TOR
    assert topo.node(topo.all_aggs()[0]).tier == TIER_AGG
    assert topo.node(topo.all_tops()[0]).tier == TIER_TOP
    agg = topo.all_aggs()[0]
    # downlinks created before uplinks (MR-MTP reads port numbers)
    assert topo.fabric_ports(agg, up=False) == ["eth1", "eth2"]
    assert topo.fabric_ports(agg, up=True) == ["eth3", "eth4"]


def test_failure_cases_reference_real_links():
    topo = _build()
    cases = topo.failure_cases()
    assert set(cases) == {"TC1", "TC2", "TC3", "TC4"}
    # TC3/TC4 sit on the agg-intermediate link, the valiant-spread edge
    assert cases["TC3"].node in topo.all_aggs()
    assert cases["TC3"].peer_node in topo.all_tops()
    assert cases["TC4"].node == cases["TC3"].peer_node


def test_invalid_params_rejected():
    with pytest.raises(ValueError, match="ints must be >= 1"):
        _build(ints=0)
    with pytest.raises(ValueError, match="unknown vl2 parameter"):
        get_topology("vl2").spec(planes=2)


@pytest.mark.parametrize("stack", ["mtp", "bgp-bfd"])
def test_stacks_converge_and_route(stack):
    """MR-MTP's assumptions survive on VL2: strict tiers mean VID
    derivation and up/down forwarding work, and BGP routes it too."""
    world, topo, deployment = build_and_converge("vl2", stack, seed=0)
    checked, unreachable = check_all_pairs(deployment, topo)
    assert checked == 12  # 4 ToRs, ordered pairs
    assert unreachable == []
