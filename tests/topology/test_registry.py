"""Topology registry: registration, duck-typed resolution, spec keys."""

from __future__ import annotations

import dataclasses

import pytest

from repro.harness.cache import task_key
from repro.topology import (
    ClosParams,
    TopologyDefinition,
    UnknownTopologyError,
    available_topologies,
    build_folded_clos,
    build_topology,
    canonical_params,
    get_topology,
    register_topology,
    resolve_topology_spec,
    two_pod_params,
    unregister_topology,
    validate_topology,
)
from repro.topology.builtin import CLOS_DEFAULT_PARAMS


def test_builtins_registered_in_order():
    assert available_topologies()[:3] == ("clos", "vl2", "dcell")


def test_get_unknown_topology_raises():
    with pytest.raises(UnknownTopologyError, match="no-such-fabric"):
        get_topology("no-such-fabric")


def test_duplicate_registration_rejected_unless_replace():
    clos = get_topology("clos")
    with pytest.raises(ValueError, match="already registered"):
        register_topology(clos)
    register_topology(clos, replace=True)  # deliberate override is fine
    assert get_topology("clos") is clos


def test_register_and_unregister_roundtrip():
    definition = TopologyDefinition(
        name="test-fab", display="test fabric",
        build=lambda world=None, **params: build_folded_clos(world=world),
        default_params={"width": 2})
    register_topology(definition)
    try:
        assert "test-fab" in available_topologies()
        assert get_topology("test-fab") is definition
    finally:
        unregister_topology("test-fab")
    assert "test-fab" not in available_topologies()
    with pytest.raises(UnknownTopologyError):
        unregister_topology("test-fab")


# ----------------------------------------------------------------------
# resolution: every accepted spelling normalizes to the same spec
# ----------------------------------------------------------------------
def test_resolve_none_is_default_clos():
    spec = resolve_topology_spec(None)
    assert spec == get_topology("clos").spec()


def test_resolve_accepts_every_spelling():
    definition = get_topology("vl2")
    spec = definition.spec()
    assert resolve_topology_spec("vl2") == spec
    assert resolve_topology_spec(spec) is spec
    assert resolve_topology_spec(definition) == spec


def test_resolve_legacy_params_dataclass():
    """A ClosParams duck-types via its topology_name property — legacy
    call sites and registry-first callers build identical specs."""
    params = two_pod_params()
    spec = resolve_topology_spec(params)
    assert spec.name == "clos"
    assert spec.params_dict() == dataclasses.asdict(params)
    assert spec == get_topology("clos").spec(**dataclasses.asdict(params))


def test_resolve_rejects_garbage():
    with pytest.raises(TypeError, match="cannot resolve a topology"):
        resolve_topology_spec(42)


def test_spec_rejects_unknown_params_up_front():
    with pytest.raises(ValueError, match="unknown clos parameter"):
        get_topology("clos").spec(num_podz=4)


def test_canonical_params_order_insensitive():
    assert canonical_params({"b": 2, "a": 1}) == \
        canonical_params([("a", 1), ("b", 2)])


# ----------------------------------------------------------------------
# builds: the registry path is the direct path
# ----------------------------------------------------------------------
def test_clos_defaults_in_lockstep_with_dataclass():
    assert CLOS_DEFAULT_PARAMS == {
        f.name: f.default
        for f in dataclasses.fields(ClosParams)
    }


def test_registry_build_identical_to_direct_build():
    direct = build_folded_clos(two_pod_params(), seed=0)
    via_registry = build_topology(two_pod_params(), seed=0)
    assert [n for n in direct.world.nodes] == \
        [n for n in via_registry.world.nodes]
    assert direct.routers() == via_registry.routers()
    assert direct.rack_subnet == via_registry.rack_subnet
    assert len(direct.world.links) == len(via_registry.world.links)


@pytest.mark.parametrize("name", ["clos", "vl2", "dcell"])
def test_every_builtin_builds_and_validates(name):
    topo = build_topology(name)
    validate_topology(topo)
    assert topo.topology_name == name
    assert set(topo.failure_cases()) == {"TC1", "TC2", "TC3", "TC4"}
    assert topo.all_tors() and topo.all_aggs()
    assert topo.routers()


# ----------------------------------------------------------------------
# cache keys: the spec (name + canonical params) is the key component
# ----------------------------------------------------------------------
def test_topology_spec_enters_cache_key():
    clos = resolve_topology_spec("clos")
    vl2 = resolve_topology_spec("vl2")
    assert task_key("t", params=clos) != task_key("t", params=vl2)
    # same fabric spelled two ways -> same key
    legacy = resolve_topology_spec(ClosParams())
    assert task_key("t", params=clos) == task_key("t", params=legacy)
    # a changed parameter changes the key
    wide = get_topology("clos").spec(num_pods=4)
    assert task_key("t", params=clos) != task_key("t", params=wide)


def test_spec_is_picklable_and_hashable():
    import pickle

    spec = get_topology("dcell").spec(cells=4)
    assert pickle.loads(pickle.dumps(spec)) == spec
    assert hash(spec) == hash(get_topology("dcell").spec(cells=4))
