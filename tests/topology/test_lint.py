"""Architecture lint: everything outside ``repro.topology`` must stay
topology-agnostic.

The topology-plugin refactor's core invariant mirrors the stack
registry's: per-fabric knowledge lives only inside ``repro.topology``
(the plugins themselves).  Any ``ClosParams``/``ClosTopology`` import or
``repro.topology.clos`` reference in harness, scenario, stack or CLI
code would re-couple those layers to plugin zero and silently break
every other registered fabric — fail it at review time instead.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

# every module that must not know which fabric it is running: the whole
# tree except the topology package itself
AGNOSTIC_FILES = sorted(
    p for p in SRC.rglob("*.py")
    if "topology" not in p.relative_to(SRC).parts)


def _matches(pattern: str, path: Path) -> list[str]:
    rx = re.compile(pattern)
    return [f"{path.relative_to(SRC.parent.parent)}:{n}: {line.rstrip()}"
            for n, line in enumerate(path.read_text().splitlines(), 1)
            if rx.search(line)]


def test_files_under_lint_exist():
    names = {p.name for p in AGNOSTIC_FILES}
    assert {"experiments.py", "sweep.py", "chaos.py", "analysis.py",
            "oracle.py", "deploy.py", "failures.py", "targets.py",
            "runner.py", "compiler.py", "cli.py"} <= names


def test_no_clos_class_imports_outside_topology():
    """``ClosParams``/``ClosTopology``/``build_folded_clos`` are plugin
    internals; consumers go through TopologySpec + build_topology."""
    rx = r"\b(ClosParams|ClosTopology|build_folded_clos)\b"
    offenders = [m for path in AGNOSTIC_FILES for m in _matches(rx, path)]
    assert not offenders, "\n".join(offenders)


def test_no_clos_module_imports_outside_topology():
    """Reaching into ``repro.topology.clos`` (or any other concrete
    plugin module) bypasses the registry; only the package surface and
    the registry API are allowed."""
    rx = r"repro\.topology\.(clos|vl2|dcell|builtin)"
    offenders = [m for path in AGNOSTIC_FILES for m in _matches(rx, path)]
    assert not offenders, "\n".join(offenders)


def test_no_topology_name_dispatch():
    """Comparing a resolved spec's name against fabric literals is the
    same coupling with a different spelling."""
    rx = r"topology_name\s*(==|!=)\s*['\"]"
    offenders = [m for path in AGNOSTIC_FILES for m in _matches(rx, path)]
    assert not offenders, "\n".join(offenders)
