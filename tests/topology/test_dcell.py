"""Recursive-DCN plugin: structure, recursion, and the MR-MTP limits.

The most important test here is the *negative* one:
:func:`test_mtp_converges_vacuously_but_blackholes_cross_cell` pins the
paper-scoped finding that MR-MTP's tree-completeness check is vacuous on
a fabric with no top tier — the protocol reports convergence while every
cross-cell pair blackholes.  See EXPERIMENTS.md ("Beyond strict Clos").
"""

from __future__ import annotations

from math import comb

import pytest

from repro.harness.experiments import build_and_converge
from repro.harness.sweep import check_all_pairs
from repro.topology import (
    TIER_AGG,
    TIER_TOR,
    build_topology,
    get_topology,
    validate_topology,
)


def _build(**overrides):
    return build_topology(get_topology("dcell").spec(**overrides))


def test_default_build_validates():
    topo = _build()
    validate_topology(topo)
    # 3 cells x (2 ToR + 2 proxies), no tier above the proxies
    assert len(topo.routers()) == 12
    assert len(topo.all_tors()) == 6
    assert len(topo.all_aggs()) == 6
    assert topo.all_tops() == []
    assert topo.all_supers() == []


@pytest.mark.parametrize("cells,proxies", [(2, 1), (3, 2), (4, 2), (5, 3)])
def test_level1_complete_graph_over_cells(cells, proxies):
    topo = _build(cells=cells, proxies_per_cell=proxies)
    validate_topology(topo)
    assert len(topo.cross_links) == comb(cells, 2)


def test_level2_recursion_over_groups():
    """groups > 1 applies the same composition rule one level up: the
    groups themselves form a complete graph."""
    topo = _build(groups=3, cells=2)
    validate_topology(topo)
    # per group: C(2,2)=1 level-1 link; across groups: C(3,2) level-2
    assert len(topo.cross_links) == 3 * 1 + comb(3, 2)
    assert len(topo.all_tors()) == 12


def test_fabric_ports_override_defines_up_as_out_of_cell():
    """Same-tier cross links would be invisible to tier comparison; the
    override is what keeps ``agg[j].uplink[k]`` targets meaningful."""
    topo = _build()
    proxy = topo.aggs[0][0][0]
    up = topo.fabric_ports(proxy, up=True)
    assert len(up) == 1
    peer = topo.node(proxy).interfaces[up[0]].peer().node
    assert peer.tier == TIER_AGG  # same tier: a cross-cell link
    # downlinks are the in-cell ToR-facing ports, in creation order
    down = topo.fabric_ports(proxy, up=False)
    assert down == ["eth1", "eth2"]
    # ToRs keep the tier-comparison meaning
    tor = topo.tors[0][0][0]
    assert topo.fabric_ports(tor, up=True) == ["eth1", "eth2"]
    assert topo.node(tor).tier == TIER_TOR


def test_failure_cases_cover_the_cross_cell_link():
    topo = _build()
    cases = topo.failure_cases()
    assert set(cases) == {"TC1", "TC2", "TC3", "TC4"}
    near, far = cases["TC3"], cases["TC4"]
    assert near.node in topo.all_aggs() and far.node in topo.all_aggs()
    assert near.peer_node == far.node and far.peer_node == near.node


def test_invalid_params_rejected():
    with pytest.raises(ValueError, match="cells must be >= 1"):
        _build(cells=0)
    with pytest.raises(ValueError, match="unknown dcell parameter"):
        get_topology("dcell").spec(levels=3)


def test_bgp_routes_the_whole_fabric():
    """With per-proxy ASNs (the RFC 7938 departure rfc7938_asn_plan
    makes for top-less fabrics), BGP reaches every rack pair."""
    world, topo, deployment = build_and_converge("dcell", "bgp-bfd", seed=0)
    checked, unreachable = check_all_pairs(deployment, topo)
    assert checked == 30  # 6 ToRs, ordered pairs
    assert unreachable == []


def test_mtp_converges_vacuously_but_blackholes_cross_cell():
    """The headline negative result: MR-MTP's ``trees_complete`` check
    quantifies over top/super spines, so on a fabric with neither it is
    vacuously true — the deployment reports ready while no cross-cell
    forwarding state exists (same-tier links form no MTP adjacency).
    Intra-cell pairs still work: the cell itself is a 2-tier Clos."""
    world, topo, deployment = build_and_converge("dcell", "mtp", seed=0)
    assert deployment.ready()  # "converged" — vacuously
    checked, unreachable = check_all_pairs(deployment, topo)
    assert checked == 30
    cell_of = {t: i for i, cell in enumerate(topo.tors[0]) for t in cell}
    cross = [(a, b) for a, b, _ in unreachable if cell_of[a] != cell_of[b]]
    intra = [(a, b) for a, b, _ in unreachable if cell_of[a] == cell_of[b]]
    assert intra == []        # each cell is a working 2-tier Clos
    assert len(cross) == 24   # every cross-cell ordered pair blackholes
