"""Property tests: symbolic targets behave lawfully on EVERY registered
topology.

The contract the scenario engine relies on: any target expression either
resolves to a real fabric element or raises ``UnknownTargetError`` up
front — never a KeyError/IndexError mid-simulation, never a node that
does not exist.  Hypothesis drives the expression space over each
registered plugin (folded-Clos, VL2, the recursive DCN alike).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.harness.failures import UnknownTargetError
from repro.scenario.targets import TargetResolver
from repro.topology import available_topologies, build_topology

_TOPOS = {name: build_topology(name, seed=0)
          for name in available_topologies()}

_SETTINGS = settings(max_examples=60, deadline=None,
                     suppress_health_check=[HealthCheck.function_scoped_fixture])


@pytest.fixture(params=sorted(_TOPOS))
def topo(request):
    return _TOPOS[request.param]


def _resolve_node(topo, expr):
    """Resolve, asserting the up-front contract on the way."""
    resolver = TargetResolver(topo)
    try:
        return resolver.node(expr)
    except UnknownTargetError:
        return None


@given(kind=st.sampled_from(["tor", "agg", "top"]),
       index=st.integers(min_value=0, max_value=40))
@_SETTINGS
def test_indexed_node_targets_resolve_or_raise(topo, kind, index):
    pool = {"tor": topo.all_tors(), "agg": topo.all_aggs(),
            "top": topo.all_tops()}[kind]
    name = _resolve_node(topo, f"{kind}[{index}]")
    if index < len(pool):
        assert name == pool[index]
        assert topo.node(name) is not None
    else:
        assert name is None  # out of range raised up front


@given(expr=st.sampled_from(["any-tor", "any-agg", "any-router"]),
       seed_draws=st.integers(min_value=1, max_value=4))
@_SETTINGS
def test_any_targets_resolve_to_real_routers(topo, expr, seed_draws):
    resolver = TargetResolver(topo)
    name = resolver.node(expr)
    assert name in topo.routers()
    # memoized: later mentions of the same expression agree
    for _ in range(seed_draws):
        assert resolver.node(expr) == name


@given(case=st.sampled_from(["TC1", "TC2", "TC3", "TC4", "TC9"]))
@_SETTINGS
def test_case_targets_resolve_or_raise(topo, case):
    resolver = TargetResolver(topo)
    try:
        node, iface = resolver.interface(f"case:{case}")
    except UnknownTargetError:
        assert case not in topo.failure_cases()
        return
    expected = topo.failure_cases()[case]
    assert (node, iface) == (expected.node, expected.interface)
    assert iface in topo.node(node).interfaces


@given(agg_index=st.integers(min_value=0, max_value=12),
       port_index=st.integers(min_value=0, max_value=8),
       direction=st.sampled_from(["uplink", "downlink"]))
@_SETTINGS
def test_port_targets_resolve_or_raise(topo, agg_index, port_index,
                                       direction):
    """``agg[i].uplink[j]`` must follow each topology's own up/down
    notion (same-tier cross links count as 'up' on the recursive DCN)."""
    aggs = topo.all_aggs()
    resolver = TargetResolver(topo)
    expr = f"agg[{agg_index}].{direction}[{port_index}]"
    try:
        node, iface = resolver.interface(expr)
    except UnknownTargetError:
        if agg_index < len(aggs):
            ports = topo.fabric_ports(aggs[agg_index],
                                      up=direction == "uplink")
            assert port_index >= len(ports)
        return
    assert node == aggs[agg_index]
    ports = topo.fabric_ports(node, up=direction == "uplink")
    assert iface == ports[port_index]


def test_every_topology_resolves_the_library_staples(topo):
    """The expressions the canonical scenario library actually uses must
    resolve on every registered fabric — this is what 'runnable under
    every scenario' means at the target layer."""
    resolver = TargetResolver(topo)
    for expr in ("tor[0]", "tor[3]", "agg[0]", "agg[0][1]", "any-agg",
                 "any-tor", "any-router"):
        assert resolver.node(expr) in topo.routers()
    for expr in ("agg[0].uplink[0]", "agg[0].uplink[any]",
                 "case:TC1", "case:TC4"):
        node, iface = resolver.interface(expr)
        assert iface in topo.node(node).interfaces
    link = resolver.link(f"{topo.all_tors()[0]}--{topo.all_aggs()[0]}")
    assert link is not None
    server = resolver.endpoint("server:tor[0]")
    assert server in topo.all_servers()
