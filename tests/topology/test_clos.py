"""Folded-Clos builder: the paper's topologies and larger ones."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.topology.clos import (
    ClosParams,
    build_folded_clos,
    four_pod_params,
    two_pod_params,
)
from repro.topology.validate import validate_topology


def test_two_pod_matches_paper_counts():
    topo = build_folded_clos(two_pod_params())
    assert len(topo.all_tors()) == 4
    assert len(topo.all_aggs()) == 4
    assert len(topo.all_tops()) == 4
    assert len(topo.routers()) == 12  # the paper's 2-PoD router count
    assert len(topo.all_servers()) == 4
    validate_topology(topo)


def test_four_pod_matches_paper_counts():
    topo = build_folded_clos(four_pod_params())
    assert len(topo.routers()) == 20  # "15 of the 20 routers" (paper VII.B)
    assert len(topo.all_tors()) == 8
    assert len(topo.all_aggs()) == 8
    assert len(topo.all_tops()) == 4
    validate_topology(topo)


def test_first_rack_subnet_is_192_168_11(paper_vid=11):
    topo = build_folded_clos(two_pod_params())
    first_tor = topo.tors[0][0][0]
    assert str(topo.rack_subnet[first_tor]) == "192.168.11.0/24"
    assert topo.tor_vid_seed[first_tor] == paper_vid


def test_rack_subnets_sequential_vids():
    topo = build_folded_clos(four_pod_params())
    seeds = [topo.tor_vid_seed[t] for t in topo.all_tors()]
    assert seeds == list(range(11, 19))


def test_plane_wiring_matches_paper_fig2():
    """S1_1 (first agg) reaches tops of plane 1 only; S1_2 plane 2 only."""
    topo = build_folded_clos(two_pod_params())
    agg1, agg2 = topo.aggs[0][0]
    plane1, plane2 = topo.tops[0]

    def uplink_names(agg):
        node = topo.node(agg)
        return {
            iface.peer().node.name
            for iface in node.interfaces.values()
            if iface.peer() and iface.peer().node.tier == 3
        }

    assert uplink_names(agg1) == set(plane1)
    assert uplink_names(agg2) == set(plane2)


def test_tor_uplink_port_numbers_are_agg_ordered():
    """MR-MTP child VIDs append the parent's port number, so ToR port 1
    must face the first agg, port 2 the second."""
    topo = build_folded_clos(two_pod_params())
    tor = topo.node(topo.tors[0][0][0])
    agg_names = topo.aggs[0][0]
    assert tor.interfaces["eth1"].peer().node.name == agg_names[0]
    assert tor.interfaces["eth2"].peer().node.name == agg_names[1]


def test_failure_cases_are_the_paper_test_points():
    topo = build_folded_clos(two_pod_params())
    cases = topo.failure_cases()
    assert set(cases) == {"TC1", "TC2", "TC3", "TC4"}
    tor = topo.tors[0][0][0]
    agg = topo.aggs[0][0][0]
    top = topo.tops[0][0][0]
    assert cases["TC1"].node == tor and cases["TC1"].peer_node == agg
    assert cases["TC2"].node == agg and cases["TC2"].peer_node == tor
    assert cases["TC3"].node == agg and cases["TC3"].peer_node == top
    assert cases["TC4"].node == top and cases["TC4"].peer_node == agg
    # TC1/TC2 are the two ends of the same link; likewise TC3/TC4
    link_a = topo.world.find_link(tor, agg)
    assert link_a is not None
    assert topo.node(cases["TC1"].node).interfaces[cases["TC1"].interface].link is link_a


def test_server_addressing_and_gateway():
    topo = build_folded_clos(two_pod_params())
    tor = topo.tors[0][0][0]
    host = topo.first_server_of(tor)
    assert str(topo.server_address(host)) == "192.168.11.1"
    assert str(topo.server_gateway[host]) == "192.168.11.254"


def test_multi_server_racks_get_distinct_gateways():
    topo = build_folded_clos(ClosParams(num_pods=2, servers_per_rack=3))
    validate_topology(topo)
    tor = topo.tors[0][0][0]
    gws = [str(topo.server_gateway[h]) for h in topo.servers[tor]]
    assert gws == ["192.168.11.254", "192.168.11.253", "192.168.11.252"]


def test_zero_server_fabric_keeps_rack_port():
    topo = build_folded_clos(ClosParams(num_pods=2, servers_per_rack=0))
    validate_topology(topo)
    tor = topo.tors[0][0][0]
    port = topo.rack_port[tor]
    iface = topo.node(tor).interfaces[port]
    assert iface.network == topo.rack_subnet[tor]


def test_four_tier_fabric_with_zones():
    params = ClosParams(num_pods=2, zones=2, supers_per_group=2)
    topo = build_folded_clos(params)
    validate_topology(topo)
    assert params.num_tiers == 4
    assert len(topo.all_supers()) == 2 * 2 * 2  # planes*tops_per_plane*width
    assert len(topo.routers()) == 2 * 12 + 8


def test_p2p_addressing_is_consistent():
    topo = build_folded_clos(two_pod_params())
    for link in topo.world.links:
        if link.end_a.node.tier == 0 or link.end_b.node.tier == 0:
            continue
        assert link.end_a.network == link.end_b.network
        assert link.end_a.address != link.end_b.address


def test_invalid_params_rejected():
    with pytest.raises(ValueError):
        ClosParams(num_pods=0)
    with pytest.raises(ValueError):
        ClosParams(servers_per_rack=-1)


def test_describe_mentions_counts():
    topo = build_folded_clos(two_pod_params())
    text = topo.describe()
    assert "2 PoD" in text and "12" in text


@settings(max_examples=20, deadline=None)
@given(
    pods=st.integers(min_value=1, max_value=5),
    tors=st.integers(min_value=1, max_value=3),
    aggs=st.integers(min_value=1, max_value=3),
    tops=st.integers(min_value=1, max_value=3),
)
def test_arbitrary_shapes_validate(pods, tors, aggs, tops):
    params = ClosParams(num_pods=pods, tors_per_pod=tors,
                        aggs_per_pod=aggs, tops_per_plane=tops)
    topo = build_folded_clos(params)
    validate_topology(topo)
    assert len(topo.routers()) == params.num_routers
