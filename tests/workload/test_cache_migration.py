"""Cache schema-4 migration: the workload engine's bump.

Schema 4 marks the arrival of the flow-level workload engine — loaded
sweep/chaos/scenario results embed workload reports, so pre-workload
(schema-3) entries must never replay.  Two guarantees:

* schema-3 entries — whatever key they sit under — miss cleanly and
  the slot is recomputed, never replayed;
* workload-free runs are untouched: their payloads carry no workload
  key, so golden fig4/5/6 digests reproduce byte-identically through
  the schema-4 cache.
"""

from __future__ import annotations

import json

from repro.harness.cache import CACHE_SCHEMA, ResultCache
from repro.harness.experiments import (
    decode_experiment_outcome,
    encode_experiment_outcome,
    experiment_task_key,
    run_experiment_task,
    ExperimentSpec,
)
from repro.harness.parallel import FanoutReport, execute_tasks
from repro.stacks import resolve_spec
from repro.topology import two_pod_params
from repro.workload.runner import (
    WorkloadRunSpec,
    decode_workload_outcome,
    encode_workload_outcome,
    run_workload_task,
    workload_task_key,
)
from repro.workload.spec import WorkloadSpec

TINY = WorkloadSpec(name="tiny", matrix="uniform", flows=300,
                    duration_ms=200, epoch_ms=25)


def _entry_path(cache: ResultCache, key: str):
    return cache.root / key[:2] / f"{key}.json"


def _plant_stale(cache: ResultCache, key: str, schema: int) -> None:
    path = _entry_path(cache, key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(
        {"schema": schema, "key": key,
         "payload": {"stale": f"schema-{schema} era"}}))


def test_schema_is_at_least_4():
    """The workload payloads joined the key space at schema 4; later
    layers (e.g. the liveness chaos fields at 5) may bump further, but
    a bump below 4 would resurrect pre-workload entries."""
    assert CACHE_SCHEMA >= 4


def test_schema3_workload_entry_misses_cleanly(tmp_path):
    """A schema-3 entry planted at a workload task's key is dropped and
    the run recomputed; the fresh schema-4 entry replays afterwards."""
    cache = ResultCache(tmp_path)
    spec = WorkloadRunSpec(params=two_pod_params(),
                           stack=resolve_spec("mtp"), workload=TINY,
                           seed=0)
    _plant_stale(cache, workload_task_key(spec), schema=3)

    report = FanoutReport()
    out = execute_tasks([spec], run_workload_task, cache=cache,
                        key_fn=workload_task_key,
                        encode=encode_workload_outcome,
                        decode=decode_workload_outcome, report=report)
    assert (report.executed, report.cached) == (1, 0)
    assert cache.dropped == 1
    assert out[0].report.flows == 300

    replay = FanoutReport()
    out2 = execute_tasks([spec], run_workload_task, cache=cache,
                         key_fn=workload_task_key,
                         encode=encode_workload_outcome,
                         decode=decode_workload_outcome, report=replay)
    assert (replay.executed, replay.cached) == (0, 1)
    assert out2[0].digest == out[0].digest
    assert out2[0].report == out[0].report


def test_schema3_experiment_entry_misses_cleanly(tmp_path):
    """The bump invalidates every family, not just workload tasks."""
    cache = ResultCache(tmp_path)
    spec = ExperimentSpec(params=two_pod_params(),
                          stack=resolve_spec("mtp"), case_name="TC1",
                          seed=0)
    _plant_stale(cache, experiment_task_key(spec), schema=3)
    report = FanoutReport()
    out = execute_tasks([spec], run_experiment_task, cache=cache,
                        key_fn=experiment_task_key,
                        encode=encode_experiment_outcome,
                        decode=decode_experiment_outcome, report=report)
    assert (report.executed, report.cached) == (1, 0)
    assert cache.dropped == 1
    assert out[0].result.convergence_us >= 0


def test_workload_free_golden_digest_unchanged_by_the_bump(tmp_path):
    """The fig-4 anchor reproduces byte-identically through the
    schema-4 cache: workload-free payloads carry no workload key, so
    nothing about the pre-workload computation changed."""
    spec = ExperimentSpec(params=two_pod_params(),
                          stack=resolve_spec("mtp"), case_name="TC4",
                          seed=0)
    direct = run_experiment_task(spec)
    via_cache = execute_tasks([spec], run_experiment_task,
                              cache=ResultCache(tmp_path),
                              key_fn=experiment_task_key,
                              encode=encode_experiment_outcome,
                              decode=decode_experiment_outcome)
    assert via_cache[0].digest == direct.digest
    # the frozen golden fig-4 value (see tests/topology/test_cache_migration)
    assert direct.result.convergence_us == 200
    payload = encode_experiment_outcome(direct)
    assert "workload" not in payload
