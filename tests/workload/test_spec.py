"""WorkloadSpec validation, canonical payloads and resolution."""

from __future__ import annotations

import dataclasses

import pytest

from repro.workload.spec import (
    CANONICAL_WORKLOADS,
    MATRIX_KINDS,
    WORKLOAD_SCHEMA,
    WorkloadError,
    WorkloadSpec,
    canonical_workloads,
    get_workload,
    resolve_workload,
)


def test_defaults_are_valid():
    spec = WorkloadSpec(name="w")
    assert spec.matrix == "permutation"
    assert spec.flows == 10_000


@pytest.mark.parametrize("bad", [
    dict(name=""),
    dict(name=" padded "),
    dict(name="w", matrix="bimodal"),
    dict(name="w", flows=0),
    dict(name="w", flows=2.5),
    dict(name="w", flows=True),
    dict(name="w", duration_ms=-1),
    dict(name="w", tenants=0),
    dict(name="w", tenants=257),
    dict(name="w", elephant_fraction=1.5),
    dict(name="w", hotspot_fraction=0.0),
    dict(name="w", incast_fanin=1),
    dict(name="w", epoch_ms=0),
])
def test_validation_rejects(bad):
    with pytest.raises(WorkloadError):
        WorkloadSpec(**bad)


def test_payload_roundtrip_every_canonical():
    for spec in CANONICAL_WORKLOADS:
        payload = spec.to_payload()
        assert payload["schema"] == WORKLOAD_SCHEMA
        assert WorkloadSpec.from_payload(payload) == spec


def test_canonical_json_is_stable():
    a = WorkloadSpec(name="w", flows=7).to_json()
    b = WorkloadSpec(name="w", flows=7).to_json()
    assert a == b
    assert a != WorkloadSpec(name="w", flows=8).to_json()


def test_from_payload_rejects_unknown_fields_and_schema():
    with pytest.raises(WorkloadError, match="unknown fields"):
        WorkloadSpec.from_payload({"name": "w", "pps": 100})
    with pytest.raises(WorkloadError, match="schema"):
        WorkloadSpec.from_payload(
            {"name": "w", "schema": WORKLOAD_SCHEMA + 1})
    with pytest.raises(WorkloadError, match="requires 'name'"):
        WorkloadSpec.from_payload({"flows": 10})
    with pytest.raises(WorkloadError):
        WorkloadSpec.from_payload("permutation-as-string")  # type: ignore


def test_resolve_workload_accepts_all_spellings():
    spec = get_workload("incast")
    assert resolve_workload("incast") is spec
    assert resolve_workload(spec) is spec
    assert resolve_workload(spec.to_payload()) == spec
    with pytest.raises(WorkloadError, match="unknown workload"):
        resolve_workload("tsunami")
    with pytest.raises(WorkloadError):
        resolve_workload(42)  # type: ignore


def test_library_covers_every_matrix_kind():
    library = canonical_workloads()
    assert set(library) == {"permutation", "uniform", "hotspot",
                            "incast", "all-to-all"}
    assert {spec.matrix for spec in library.values()} == set(MATRIX_KINDS)


def test_epoch_ms_is_part_of_the_cache_identity():
    """epoch_ms quantizes blackhole windows, so two specs differing only
    in it must serialize differently (distinct cache keys)."""
    base = WorkloadSpec(name="w")
    tight = dataclasses.replace(base, epoch_ms=5)
    assert base.to_json() != tight.to_json()
