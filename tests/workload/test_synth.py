"""Workload synthesis: matrix structure, determinism, arrival law."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.rng import RngRegistry
from repro.sim.units import MILLISECOND
from repro.workload.spec import WorkloadError, WorkloadSpec
from repro.workload.synth import synthesize

ENDPOINTS = [
    ("T-1", ["h1", "h2"]),
    ("T-2", ["h3", "h4"]),
    ("T-3", ["h5", "h6", "h7"]),
    ("T-4", ["h8"]),
]


def synth(matrix="uniform", seed=0, **overrides):
    spec = WorkloadSpec(name="t", matrix=matrix, flows=2000,
                        duration_ms=100, **overrides)
    return synthesize(spec, ENDPOINTS, RngRegistry(seed))


def test_determinism_per_seed():
    a, b = synth(seed=7), synth(seed=7)
    for col in ("src", "dst", "size_bytes", "arrival_us", "tenant",
                "src_port", "dst_port"):
        assert np.array_equal(getattr(a, col), getattr(b, col)), col
    c = synth(seed=8)
    assert not np.array_equal(a.src_port, c.src_port)


def test_layout_skips_empty_racks():
    spec = WorkloadSpec(name="t", flows=10)
    flows = synthesize(spec, [("T-1", ["h1"]), ("T-x", []),
                              ("T-2", ["h2"])], RngRegistry(0))
    assert flows.tors == ("T-1", "T-2")
    assert flows.hosts == ("h1", "h2")


def test_requires_two_populated_racks():
    with pytest.raises(WorkloadError, match="at least 2 populated racks"):
        synthesize(WorkloadSpec(name="t"), [("T-1", ["h1"]), ("T-2", [])],
                   RngRegistry(0))


def test_no_flow_stays_inside_its_rack():
    """Every matrix kind crosses the fabric: src rack != dst rack."""
    for matrix in ("permutation", "uniform", "hotspot", "incast",
                   "all-to-all"):
        flows = synth(matrix=matrix)
        assert (flows.host_tor[flows.src]
                != flows.host_tor[flows.dst]).all(), matrix


def test_permutation_is_a_rack_derangement():
    flows = synth(matrix="permutation")
    src_rack = flows.host_tor[flows.src]
    dst_rack = flows.host_tor[flows.dst]
    mapping = {}
    for s, d in zip(src_rack.tolist(), dst_rack.tolist()):
        assert mapping.setdefault(s, d) == d  # functional: one dst rack
        assert s != d
    # a cycle over all racks: the dst racks are a permutation of srcs
    assert len(set(mapping.values())) == len(mapping)


def test_all_to_all_covers_every_ordered_pair():
    flows = synth(matrix="all-to-all")
    pairs = set(zip(flows.host_tor[flows.src].tolist(),
                    flows.host_tor[flows.dst].tolist()))
    n = len(flows.tors)
    assert pairs == {(s, d) for s in range(n) for d in range(n) if s != d}


def test_hotspot_concentrates_the_requested_fraction():
    flows = synth(matrix="hotspot", hotspot_fraction=0.5)
    dst_rack = flows.host_tor[flows.dst]
    counts = np.bincount(dst_rack, minlength=len(flows.tors))
    hot_share = counts.max() / len(flows)
    # ~50% directed + the uniform background landing there by chance
    assert 0.45 < hot_share < 0.75


def test_incast_groups_share_sink_and_start_time():
    flows = synth(matrix="incast", incast_fanin=16)
    group = np.arange(len(flows)) // 16
    for g in range(int(group.max()) + 1):
        members = np.flatnonzero(group == g)
        assert len(set(flows.dst[members].tolist())) == 1  # one sink host
        assert len(set(flows.arrival_us[members].tolist())) == 1  # sync
    # senders never sit in the sink's rack
    assert (flows.host_tor[flows.src] != flows.host_tor[flows.dst]).all()


def test_sizes_are_an_elephant_mice_mix():
    flows = synth(elephant_fraction=0.1, mice_bytes=20_000,
                  elephant_bytes=10_000_000)
    sizes = flows.size_bytes
    assert (sizes >= 1).all()
    # jitter is x2 at most, so the classes cannot overlap
    mice = sizes <= 40_000
    elephants = sizes >= 5_000_000
    assert mice.sum() + elephants.sum() == len(sizes)
    assert 0.05 < elephants.mean() < 0.16


def test_arrivals_sorted_per_tenant_within_window():
    flows = synth()
    window = flows.spec.duration_ms * MILLISECOND
    assert (flows.arrival_us >= 0).all()
    assert (flows.arrival_us < window).all()
    for t in range(flows.spec.tenants):
        arr = flows.arrival_us[flows.tenant == t]
        assert (np.diff(arr) >= 0).all()
    # tenant id shows in the service port
    assert np.array_equal(flows.dst_port, 7700 + flows.tenant)


def test_offered_bytes_matches_sizes():
    flows = synth()
    assert flows.offered_bytes == int(flows.size_bytes.sum())
    assert len(flows) == 2000
