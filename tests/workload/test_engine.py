"""The fluid engine end to end: fault-free runs, faulted scenarios,
and agreement with the probe-based golden detection metrics."""

from __future__ import annotations

import pytest

from repro.scenario import Scenario, ScenarioEvent, run_scenario
from repro.topology.clos import two_pod_params
from repro.workload import WorkloadReport, run_workload
from repro.workload.spec import WorkloadSpec

SMALL = WorkloadSpec(name="small", matrix="permutation", flows=1500,
                     duration_ms=500, epoch_ms=25)


@pytest.mark.parametrize("stack", ["mtp", "bgp-bfd", "mtp-spray"])
def test_fault_free_run_completes_everything(stack):
    report = run_workload(SMALL, two_pod_params(), stack)
    assert report.flows == 1500
    assert report.completed_flows == 1500
    assert report.blackholed_flows == 0
    assert report.blackholed_bytes == 0
    assert report.max_conservation_error < 1e-9
    assert report.offered_bytes == pytest.approx(
        report.delivered_bytes + report.dropped_bytes, abs=2)
    assert report.goodput_bps > 0
    assert report.fct_p50_us > 0
    assert report.fct_p50_us <= report.fct_p99_us <= report.fct_max_us
    assert 0.0 < report.peak_link_utilization <= 1.0 + 1e-9
    assert report.hot_links  # somebody is the bottleneck
    assert report.max_blackhole_us == 0


def test_report_payload_roundtrip():
    report = run_workload(SMALL, two_pod_params(), "mtp")
    restored = WorkloadReport.from_payload(report.to_payload())
    assert restored == report


def test_epoch_records_sum_to_the_report():
    report = run_workload(SMALL, two_pod_params(), "mtp")
    assert report.epochs == len(report.epoch_records)
    offered = sum(r[2] for r in report.epoch_records)
    delivered = sum(r[3] for r in report.epoch_records)
    # per-epoch rows are individually rounded ints
    assert offered == pytest.approx(report.offered_bytes,
                                    abs=2 * report.epochs)
    assert delivered == pytest.approx(report.delivered_bytes,
                                      abs=2 * report.epochs)


def test_same_seed_same_report_across_stacks_differ():
    """Determinism per (stack, seed): identical reruns, and the seed
    reshuffles the matrix."""
    a = run_workload(SMALL, two_pod_params(), "mtp", seed=3)
    b = run_workload(SMALL, two_pod_params(), "mtp", seed=3)
    assert a.to_payload() == b.to_payload()
    c = run_workload(SMALL, two_pod_params(), "mtp", seed=4)
    assert a.to_payload() != c.to_payload()


def _loaded_tc1(stack: str):
    scenario = Scenario(
        name="tc1-loaded",
        description="TC1 under a permutation workload",
        settle="keepalive-phase",
        quiet_ms=1000,
        max_wait_ms=45_000,
        events=(
            ScenarioEvent(op="workload", at_ms=0, workload={
                "name": "tc1-load", "matrix": "permutation",
                "flows": 3000, "duration_ms": 1500, "epoch_ms": 25,
            }),
            ScenarioEvent(op="iface_down", at_ms=200, target="case:TC1"),
        ),
    )
    return run_scenario(scenario, two_pod_params(), stack, seed=0)


@pytest.mark.parametrize("stack", ["mtp", "bgp-bfd"])
def test_tc1_blackhole_window_tracks_detection_metrics(stack):
    """The acceptance check: the flow-level blackhole window under a
    TC1 failure must be consistent with the probe-based detection time
    the golden metrics measure — equal up to the epoch quantization of
    the fluid sampler (a flow's window closes at the first epoch
    boundary after the reroute)."""
    metrics = _loaded_tc1(stack)
    wl = metrics.workload
    assert wl is not None
    assert metrics.detection_us is not None and metrics.detection_us > 0
    epoch_us = 25 * 1000
    assert wl["max_blackhole_us"] > 0
    assert wl["blackhole_flow_count"] > 0
    assert wl["max_blackhole_us"] >= metrics.detection_us - epoch_us
    assert wl["max_blackhole_us"] <= metrics.detection_us + 2 * epoch_us
    assert wl["max_conservation_error"] < 1e-6
    # the fabric reconverged: the blackhole is a window, not forever
    assert wl["blackholed_flows"] == 0
    assert wl["completed_flows"] == wl["flows"]
    assert wl["blackholed_bytes"] > 0


def test_faster_detection_means_narrower_blackhole():
    """MR-MTP's 100 ms dead timer vs BGP+BFD's ~300 ms multiplier:
    the flow-level windows must order the same way the probe-based
    golden metrics do."""
    mtp = _loaded_tc1("mtp").workload
    bfd = _loaded_tc1("bgp-bfd").workload
    assert mtp["max_blackhole_us"] < bfd["max_blackhole_us"]
    assert mtp["blackholed_bytes"] < bfd["blackholed_bytes"]
