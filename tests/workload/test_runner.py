"""Loaded campaigns through the fan-out machinery: serial == parallel
digests, cache identity, and the supervised loaded sweep."""

from __future__ import annotations

import dataclasses

from repro.harness.cache import ResultCache
from repro.harness.parallel import FanoutReport
from repro.harness.supervisor import RetryPolicy, SupervisorReport
from repro.harness.sweep import (
    single_failure_sweep_outcomes,
    sweep_point_key,
    sweep_specs,
)
from repro.topology.clos import two_pod_params
from repro.workload.runner import (
    WorkloadRunSpec,
    run_workload_suite,
    workload_task_key,
)
from repro.workload.spec import WorkloadSpec
from repro.stacks import resolve_spec

TINY = WorkloadSpec(name="tiny", matrix="uniform", flows=400,
                    duration_ms=300, epoch_ms=25)


def _run_spec(**overrides):
    base = dict(params=two_pod_params(), stack=resolve_spec("mtp"),
                workload=TINY, seed=0)
    base.update(overrides)
    return WorkloadRunSpec(**base)


def test_suite_serial_equals_jobs2():
    serial = run_workload_suite(two_pod_params(), [TINY],
                                ["mtp", "bgp-bfd"], jobs=1)
    fanned = run_workload_suite(two_pod_params(), [TINY],
                                ["mtp", "bgp-bfd"], jobs=2)
    assert [o.digest for o in serial] == [o.digest for o in fanned]
    assert [o.report.to_payload() for o in serial] == \
        [o.report.to_payload() for o in fanned]


def test_suite_replays_from_cache(tmp_path):
    cache = ResultCache(tmp_path)
    first = FanoutReport()
    out1 = run_workload_suite(two_pod_params(), [TINY], ["mtp"],
                              cache=cache, report=first)
    assert (first.executed, first.cached) == (1, 0)
    second = FanoutReport()
    out2 = run_workload_suite(two_pod_params(), [TINY], ["mtp"],
                              cache=cache, report=second)
    assert (second.executed, second.cached) == (0, 1)
    assert out1[0].digest == out2[0].digest
    assert out1[0].report == out2[0].report


def test_workload_task_key_invalidates_on_every_component():
    base = workload_task_key(_run_spec())
    variants = [
        workload_task_key(_run_spec(seed=1)),
        workload_task_key(_run_spec(stack=resolve_spec("bgp-bfd"))),
        workload_task_key(_run_spec(
            workload=dataclasses.replace(TINY, flows=401))),
        workload_task_key(_run_spec(
            workload=dataclasses.replace(TINY, epoch_ms=10))),
        workload_task_key(_run_spec(
            params=two_pod_params(tors_per_pod=3))),
    ]
    assert base not in set(variants)
    assert len(set(variants)) == len(variants)


def test_loaded_sweep_serial_equals_jobs2_supervised():
    """The acceptance pairing: a workload-carrying sweep, supervised,
    fans out with byte-identical digests."""
    points = sweep_specs(two_pod_params(), "mtp")[:3]
    points = [s.point for s in points]
    runs = []
    for jobs in (1, 2):
        sup = SupervisorReport()
        outcomes = single_failure_sweep_outcomes(
            two_pod_params(), "mtp", points=points, workload=TINY,
            jobs=jobs, policy=RetryPolicy(max_attempts=2, seed=0),
            supervisor=sup)
        assert all(o is not None for o in outcomes)
        runs.append([o.digest for o in outcomes])
    assert runs[0] == runs[1]


def test_loaded_sweep_keeps_probe_only_cache_identity():
    """Attaching a workload must not disturb the classic sweep's cache
    keys — probe-only entries stay replayable across this change."""
    plain = sweep_specs(two_pod_params(), "mtp")[0]
    loaded = sweep_specs(two_pod_params(), "mtp", workload=TINY)[0]
    assert plain.workload is None
    assert loaded.workload == TINY.to_payload()
    assert sweep_point_key(plain) != sweep_point_key(loaded)
    # the probe-only key is exactly the historical one: no new field
    rebuilt = sweep_specs(two_pod_params(), "mtp", workload=None)[0]
    assert sweep_point_key(rebuilt) == sweep_point_key(plain)


def test_loaded_sweep_attaches_reports():
    points = sweep_specs(two_pod_params(), "mtp")[:1]
    outcome = single_failure_sweep_outcomes(
        two_pod_params(), "mtp", points=[points[0].point],
        workload=TINY)[0]
    assert outcome.result.ok
    wl = outcome.result.workload
    assert wl is not None
    assert wl["flows"] == 400
    assert wl["max_conservation_error"] < 1e-6
    # the hard failure happened before the workload window closed, so
    # at least one epoch boundary was marked
    assert wl["epochs"] >= 2
