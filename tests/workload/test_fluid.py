"""The max-min waterfall's invariants (DESIGN §13)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workload.fluid import FluidProblem, link_loads, max_min_rates


def problem(capacity, paths):
    """Build a FluidProblem from per-flow link-id lists."""
    flow_links = np.concatenate(
        [np.asarray(p, dtype=np.int64) for p in paths]
        or [np.empty(0, dtype=np.int64)])
    flow_ptr = np.zeros(len(paths) + 1, dtype=np.int64)
    np.cumsum([len(p) for p in paths], out=flow_ptr[1:])
    return FluidProblem(capacity=np.asarray(capacity, dtype=np.float64),
                        flow_links=flow_links, flow_ptr=flow_ptr)


def test_equal_share_on_one_link():
    prob = problem([100.0], [[0], [0], [0], [0]])
    rate = max_min_rates(prob)
    assert np.allclose(rate, 25.0)


def test_empty_path_and_inactive_flows_get_zero():
    prob = problem([100.0], [[0], [], [0]])
    rate = max_min_rates(prob, active=np.array([True, True, False]))
    assert rate[1] == 0.0 and rate[2] == 0.0
    assert np.isclose(rate[0], 100.0)  # alone on the link


def test_waterfall_two_bottlenecks():
    """The textbook example: flows A(link0), B(link0+link1), C(link1)
    with capacities 10 and 20: A=B=5 at link0, then C fills link1 to 15."""
    prob = problem([10.0, 20.0], [[0], [0, 1], [1]])
    rate = max_min_rates(prob)
    assert np.allclose(rate, [5.0, 5.0, 15.0])


def test_no_link_oversubscribed_random():
    rng = np.random.default_rng(3)
    for _ in range(20):
        n_links = int(rng.integers(2, 12))
        capacity = rng.uniform(1.0, 100.0, size=n_links)
        paths = [rng.choice(n_links,
                            size=int(rng.integers(1, min(5, n_links + 1))),
                            replace=False)
                 for _ in range(int(rng.integers(1, 40)))]
        prob = problem(capacity, paths)
        rate = max_min_rates(prob)
        assert (rate >= 0).all() and np.isfinite(rate).all()
        assert (rate > 0).all()  # all capacities positive -> all flow
        loads = link_loads(prob, rate)
        assert (loads <= capacity * (1 + 1e-6)).all()


def test_max_min_fairness_property():
    """No flow can be raised without lowering an equal-or-smaller one:
    every flow has a bottleneck link that is saturated and on which it
    holds a maximal rate."""
    rng = np.random.default_rng(11)
    n_links = 8
    capacity = rng.uniform(5.0, 50.0, size=n_links)
    paths = [rng.choice(n_links, size=int(rng.integers(1, 4)),
                        replace=False) for _ in range(30)]
    prob = problem(capacity, paths)
    rate = max_min_rates(prob)
    loads = link_loads(prob, rate)
    for f, path in enumerate(paths):
        saturated = [l for l in path
                     if loads[l] >= capacity[l] * (1 - 1e-6)]
        assert saturated, f"flow {f} has no bottleneck"
        assert any(
            rate[f] >= max(rate[g] for g, p in enumerate(paths)
                           if l in set(p.tolist())) - 1e-6
            for l in saturated), f"flow {f} not maximal on any bottleneck"


def test_deterministic_bit_identical():
    rng = np.random.default_rng(5)
    capacity = rng.uniform(1.0, 10.0, size=6)
    paths = [rng.choice(6, size=2, replace=False) for _ in range(25)]
    prob = problem(capacity, paths)
    a = max_min_rates(prob)
    b = max_min_rates(prob)
    assert a.tobytes() == b.tobytes()


def test_zero_capacity_link_pins_flows_to_zero():
    prob = problem([0.0, 100.0], [[0, 1], [1]])
    rate = max_min_rates(prob)
    assert rate[0] == 0.0
    assert np.isclose(rate[1], 100.0)


def test_empty_problem():
    prob = problem([], [])
    assert len(max_min_rates(prob)) == 0


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_waterfall_invariants_hypothesis(data):
    """Property form: any random problem keeps rates finite and
    non-negative and no link oversubscribed."""
    n_links = data.draw(st.integers(1, 10))
    capacity = data.draw(st.lists(
        st.floats(0.0, 1000.0, allow_nan=False), min_size=n_links,
        max_size=n_links))
    n_flows = data.draw(st.integers(0, 25))
    paths = [
        np.unique(data.draw(st.lists(st.integers(0, n_links - 1),
                                     min_size=1, max_size=4)))
        for _ in range(n_flows)
    ]
    prob = problem(capacity, paths)
    rate = max_min_rates(prob)
    assert (rate >= 0).all() and np.isfinite(rate).all()
    loads = link_loads(prob, rate)
    cap = np.asarray(capacity)
    assert (loads <= cap * (1 + 1e-6) + 1e-9).all()
