"""Property: every injected byte lands in exactly one bucket.

Hypothesis draws workload specs (any matrix, any shape) and an ambient
impairment, and runs the fluid engine on converged clos, VL2 and DCell
fabrics: ``offered == delivered + dropped + blackholed`` must hold for
every epoch, whatever the topology family, path structure (including
MR-MTP's dead-end cross-cell pairs on DCell) or loss regime."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.harness.experiments import build_and_converge
from repro.harness.sweep import fabric_failure_points
from repro.net.impairment import ImpairmentProfile
from repro.sim.units import MILLISECOND
from repro.topology.clos import two_pod_params
from repro.workload.engine import FluidWorkload
from repro.workload.spec import MATRIX_KINDS, WorkloadSpec

#: topology family -> (params, stack).  DCell runs MR-MTP deliberately:
#: its cross-cell pairs dead-end, so the blackhole bucket is exercised
#: without injecting any fault.
FAMILIES = {
    "clos": (two_pod_params(), "mtp"),
    "vl2": ("vl2", "bgp-bfd"),
    "dcell": ("dcell", "mtp"),
}

_fabrics: dict[str, tuple] = {}


def fabric(name):
    if name not in _fabrics:
        params, stack = FAMILIES[name]
        _fabrics[name] = build_and_converge(params, stack, seed=0)
    return _fabrics[name]


SPECS = st.builds(
    WorkloadSpec,
    name=st.just("prop"),
    matrix=st.sampled_from(MATRIX_KINDS),
    flows=st.integers(min_value=30, max_value=300),
    duration_ms=st.integers(min_value=40, max_value=200),
    tenants=st.integers(min_value=1, max_value=4),
    elephant_fraction=st.floats(min_value=0.0, max_value=0.3),
    incast_fanin=st.integers(min_value=2, max_value=8),
    epoch_ms=st.integers(min_value=10, max_value=50),
)

PROP_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.data_too_large],
)


@pytest.mark.parametrize("family", sorted(FAMILIES))
@PROP_SETTINGS
@given(spec=SPECS,
       loss=st.floats(min_value=0.0, max_value=0.3),
       link_pick=st.integers(min_value=0, max_value=10**6))
def test_every_byte_lands_in_exactly_one_bucket(family, spec, loss,
                                                link_pick):
    world, topo, deployment = fabric(family)
    impaired = None
    if loss > 0.0:
        points = fabric_failure_points(topo)
        point = points[link_pick % len(points)]
        iface = topo.node(point.node).interfaces[point.interface]
        impaired = iface.link
        impaired_end = iface
        impaired.set_impairment(
            iface, ImpairmentProfile(loss=loss),
            world.rng.stream("conservation-prop-impair"))
    try:
        engine = FluidWorkload(spec, topo, deployment)
        engine.start()
        world.run_for(spec.duration_ms * MILLISECOND)
        report = engine.finish()
    finally:
        if impaired is not None:
            impaired.clear_impairment(impaired_end)

    assert report.max_conservation_error < 1e-6
    assert report.offered_bytes == pytest.approx(
        report.delivered_bytes + report.dropped_bytes
        + report.blackholed_bytes, abs=3)
    for start_us, end_us, offered, delivered, dropped, blackholed \
            in report.epoch_records:
        assert end_us >= start_us
        assert min(offered, delivered, dropped, blackholed) >= 0
        assert offered == pytest.approx(
            delivered + dropped + blackholed, abs=3)
    # the two flow ledgers agree: completed + unfinished == all
    assert report.completed_flows + report.blackholed_flows <= report.flows
    if loss == 0.0 and family != "dcell":
        # clean Clos/VL2 fabrics deliver everything they route
        assert report.dropped_bytes == 0
        assert report.blackholed_bytes == 0
