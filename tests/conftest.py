"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.net.world import World
from repro.stack.addresses import Ipv4Address


@pytest.fixture
def world() -> World:
    return World(seed=42)


def make_ip_pair(world: World):
    """Two nodes A--B with IP stacks and addresses 10.0.0.1/24, 10.0.0.2/24."""
    from repro.iputil.stack import IpStack

    a = world.add_node("A", tier=1)
    b = world.add_node("B", tier=1)
    link = world.connect(a, b)
    link.end_a.assign_address(Ipv4Address.parse("10.0.0.1"), 24)
    link.end_b.assign_address(Ipv4Address.parse("10.0.0.2"), 24)
    sa = IpStack(a)
    sb = IpStack(b)
    sa.install_connected_routes()
    sb.install_connected_routes()
    return a, b, sa, sb
