"""Property-based whole-fabric invariants.

Hypothesis draws folded-Clos shapes and flows; for each we assert the
paper's structural claims: the meshed trees always complete, every VID
encodes a real path, forwarding is loop-free and valley-free, and both
protocols deliver between any pair of racks.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.vid import Vid
from repro.harness.convergence import converge_from_cold
from repro.harness.deploy import deploy_mtp
from repro.harness.experiments import StackKind, build_and_converge
from repro.harness.pathtrace import trace_path
from repro.net.world import World
from repro.topology.clos import ClosParams, build_folded_clos

SHAPES = st.builds(
    ClosParams,
    num_pods=st.integers(min_value=2, max_value=4),
    tors_per_pod=st.integers(min_value=1, max_value=3),
    aggs_per_pod=st.integers(min_value=1, max_value=3),
    tops_per_plane=st.integers(min_value=1, max_value=2),
)

SLOW_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def converged_mtp(params: ClosParams):
    world = World(seed=11)
    topo = build_folded_clos(params, world=world)
    dep = deploy_mtp(topo)
    dep.start()
    converge_from_cold(world, dep, dep.trees_complete)
    return world, topo, dep


@SLOW_SETTINGS
@given(params=SHAPES)
def test_meshed_trees_always_complete(params):
    """Every top spine ends up holding one VID per ToR of its planes'
    pods — for any fabric shape."""
    world, topo, dep = converged_mtp(params)
    all_roots = set(topo.tor_vid_seed.values())
    for top in topo.all_tops():
        assert dep.mtp_nodes[top].table.roots() == all_roots
    # every agg holds exactly its pod's roots
    for z, zone in enumerate(topo.aggs):
        for p, pod in enumerate(zone):
            pod_roots = {topo.tor_vid_seed[t] for t in topo.tors[z][p]}
            for agg in pod:
                assert dep.mtp_nodes[agg].table.roots() == pod_roots


@SLOW_SETTINGS
@given(params=SHAPES)
def test_vids_encode_real_paths(params):
    """A VID's components are the actual port numbers along its path
    from the root (the self-describing-path property of section III.B)."""
    world, topo, dep = converged_mtp(params)
    tor_by_root = {topo.tor_vid_seed[t]: t for t in topo.all_tors()}
    for name in topo.all_aggs() + topo.all_tops():
        mtp = dep.mtp_nodes[name]
        for port, peer_node in _port_peers(topo, name):
            for vid in mtp.table.vids_on(port):
                # walk the VID's ports down from the root and confirm we
                # arrive at this node
                current = tor_by_root[vid.root]
                for hop_port in vid.parts[1:]:
                    iface = topo.node(current).interfaces[f"eth{hop_port}"]
                    assert iface.peer() is not None, (vid, current)
                    current = iface.peer().node.name
                assert current == name, (str(vid), name)


def _port_peers(topo, name):
    node = topo.node(name)
    for iface in node.interfaces.values():
        peer = iface.peer()
        if peer is not None:
            yield iface.name, peer.node.name


@SLOW_SETTINGS
@given(params=SHAPES, src_port=st.integers(min_value=40000, max_value=40963))
def test_mtp_forwarding_loop_free_and_valley_free(params, src_port):
    """Any flow between the first and last racks follows a strictly
    up-then-down tier profile and terminates."""
    world, topo, dep = converged_mtp(params)
    src = topo.first_server_of(topo.tors[0][0][0])
    dst = topo.first_server_of(topo.tors[0][-1][-1])
    path = trace_path(dep, src, dst, src_port)
    assert path[0] == src and path[-1] == dst
    assert len(path) == len(set(path)), f"loop in {path}"
    tiers = [topo.node(n).tier for n in path]
    peak = tiers.index(max(tiers))
    assert tiers[:peak] == sorted(tiers[:peak]), f"not rising: {tiers}"
    assert tiers[peak:] == sorted(tiers[peak:], reverse=True), \
        f"not falling: {tiers}"


@SLOW_SETTINGS
@given(params=SHAPES)
def test_bgp_fib_complete_on_any_shape(params):
    world, topo, dep = build_and_converge(params, StackKind.BGP, seed=13)
    for name, stack in dep.stacks.items():
        for subnet in topo.rack_subnet.values():
            assert stack.table.lookup(subnet.host(1)) is not None, (
                f"{name} missing {subnet}")


@SLOW_SETTINGS
@given(
    params=SHAPES,
    src_port=st.integers(min_value=40000, max_value=40963),
)
def test_bgp_and_mtp_choose_equal_length_paths(params, src_port):
    """Both protocols route rack-to-rack over minimal Clos paths, so the
    hop counts agree for every flow."""
    world_b, topo_b, dep_b = build_and_converge(params, StackKind.BGP, seed=13)
    world_m, topo_m, dep_m = converged_mtp(params)
    src_b = topo_b.first_server_of(topo_b.tors[0][0][0])
    dst_b = topo_b.first_server_of(topo_b.tors[0][-1][-1])
    path_bgp = trace_path(dep_b, src_b, dst_b, src_port)
    path_mtp = trace_path(dep_m, src_b, dst_b, src_port)
    assert len(path_bgp) == len(path_mtp)
