"""Four-tier (two-zone, super-spine) fabrics — the paper's multi-tier
scaling claim (sections III.B and IX) exercised end to end."""

from __future__ import annotations

import pytest

from repro.harness.experiments import StackKind, build_and_converge
from repro.harness.pathtrace import trace_path
from repro.sim.units import MILLISECOND, SECOND
from repro.topology.clos import ClosParams
from repro.traffic.generator import ReceiverAnalyzer, TrafficSender

PARAMS = ClosParams(num_pods=2, zones=2, supers_per_group=2)


@pytest.fixture(scope="module")
def mtp_fabric():
    return build_and_converge(PARAMS, StackKind.MTP, seed=21,
                              max_converge_us=120 * SECOND)


def test_supers_mesh_every_tree(mtp_fabric):
    world, topo, dep = mtp_fabric
    all_roots = set(topo.tor_vid_seed.values())
    assert len(all_roots) == 8
    for sup in topo.all_supers():
        assert dep.mtp_nodes[sup].table.roots() == all_roots


def test_super_vids_have_depth_four(mtp_fabric):
    """VIDs grow one component per tier: root.torport.aggport.topport."""
    world, topo, dep = mtp_fabric
    for sup in topo.all_supers():
        for vid in dep.mtp_nodes[sup].table.all_vids():
            assert vid.depth == 4


def test_tops_know_their_zone_only(mtp_fabric):
    world, topo, dep = mtp_fabric
    for z, zone_tops in enumerate(topo.tops):
        zone_roots = {topo.tor_vid_seed[t]
                      for pod in topo.tors[z] for t in pod}
        for plane in zone_tops:
            for top in plane:
                assert dep.mtp_nodes[top].table.roots() == zone_roots


def test_cross_zone_traffic_delivered(mtp_fabric):
    world, topo, dep = mtp_fabric
    src = topo.first_server_of(topo.tors[0][0][0])   # zone 1
    dst = topo.first_server_of(topo.tors[1][0][0])   # zone 2
    sender = TrafficSender(dep.servers[src].udp, topo.server_address(dst),
                           gap_us=1000)
    analyzer = ReceiverAnalyzer(dep.servers[dst].udp)
    sender.start(count=100)
    world.run_for(2 * SECOND)
    report = analyzer.report(sender)
    analyzer.close()  # release the port for later tests on this fixture
    assert report.lost == 0


def test_cross_zone_path_peaks_at_supers(mtp_fabric):
    world, topo, dep = mtp_fabric
    src = topo.first_server_of(topo.tors[0][0][0])
    dst = topo.first_server_of(topo.tors[1][1][1])
    path = trace_path(dep, src, dst, src_port=40002)
    tiers = [topo.node(n).tier for n in path]
    assert max(tiers) == 4
    # server,tor,agg,top,super,top,agg,tor,server = 9 hops
    assert tiers == [0, 1, 2, 3, 4, 3, 2, 1, 0]


def test_intra_zone_traffic_avoids_supers(mtp_fabric):
    world, topo, dep = mtp_fabric
    src = topo.first_server_of(topo.tors[0][0][0])
    dst = topo.first_server_of(topo.tors[0][1][1])
    for port in range(40000, 40016):
        path = trace_path(dep, src, dst, src_port=port)
        assert max(topo.node(n).tier for n in path) == 3


def test_zone_boundary_failure_recovers(mtp_fabric):
    """Kill a top's super-uplink: cross-zone traffic reroutes after the
    dead timer; the zone's internal traffic is untouched."""
    world, topo, dep = mtp_fabric
    top = topo.tops[0][0][0]
    node = topo.node(top)
    super_iface = next(
        iface.name for iface in node.interfaces.values()
        if iface.peer() is not None and iface.peer().node.tier == 4
    )
    node.interfaces[super_iface].set_admin(False)
    world.run_for(SECOND)
    src = topo.first_server_of(topo.tors[0][0][0])
    dst = topo.first_server_of(topo.tors[1][0][0])
    sender = TrafficSender(dep.servers[src].udp, topo.server_address(dst),
                           gap_us=1000, src_port=41777)
    analyzer = ReceiverAnalyzer(dep.servers[dst].udp)
    sender.start(count=200)
    world.run_for(2 * SECOND)
    assert analyzer.report(sender).lost == 0


def test_bgp_four_tier_converges_and_delivers():
    world, topo, dep = build_and_converge(PARAMS, StackKind.BGP, seed=22,
                                          max_converge_us=120 * SECOND)
    src = topo.first_server_of(topo.tors[0][0][0])
    dst = topo.first_server_of(topo.tors[1][1][1])
    sender = TrafficSender(dep.servers[src].udp, topo.server_address(dst),
                           gap_us=1000)
    analyzer = ReceiverAnalyzer(dep.servers[dst].udp)
    sender.start(count=100)
    world.run_for(2 * SECOND)
    assert analyzer.report(sender).lost == 0
    # AS paths across zones stay loop-free
    for name, speaker in dep.speakers.items():
        for prefix in speaker.loc_rib.prefixes():
            for entry in speaker.loc_rib.chosen(prefix):
                path = entry.attributes.as_path
                assert len(path) == len(set(path)), (name, prefix, path)
