"""Stability soaks: minutes of simulated time without a single flap.

Route flapping and false failure detection are the instabilities the
paper's section IV worries about; a converged fabric with jittered
timers must hold every session/neighbor up indefinitely.
"""

from __future__ import annotations

import pytest

from repro.bgp.config import BgpTimers
from repro.core.config import MtpTimers
from repro.harness.experiments import StackKind, StackTimers, build_and_converge
from repro.sim.units import SECOND
from repro.topology.clos import two_pod_params

SOAK_US = 120 * SECOND


def test_mtp_soak_no_false_detections():
    timers = StackTimers(mtp=MtpTimers(jitter=0.3))
    world, topo, dep = build_and_converge(two_pod_params(), StackKind.MTP,
                                          seed=41, timers=timers)
    t0 = world.sim.now
    world.run_for(SOAK_US)
    downs = [r for r in world.trace.select(category="mtp.neighbor", since=t0)
             if "down" in r.message]
    assert downs == [], downs[:3]
    for name, mtp in dep.mtp_nodes.items():
        assert all(nbr.up for nbr in mtp.neighbors.values()), name
        assert mtp.counters.data_dropped_no_path == 0


def test_bgp_soak_no_hold_expiries():
    timers = StackTimers(bgp=BgpTimers(jitter=0.3))
    world, topo, dep = build_and_converge(two_pod_params(), StackKind.BGP,
                                          seed=41, timers=timers)
    t0 = world.sim.now
    world.run_for(SOAK_US)
    downs = [r for r in world.trace.select(category="bgp.session", since=t0)
             if "down" in r.message]
    assert downs == [], downs[:3]
    assert dep.all_established()
    # no spurious routing churn either
    assert world.trace.count("bgp.update.tx", since=t0) == 0


def test_bgp_bfd_soak():
    world, topo, dep = build_and_converge(two_pod_params(), StackKind.BGP_BFD,
                                          seed=41)
    t0 = world.sim.now
    world.run_for(SOAK_US)
    bfd_downs = [r for r in world.trace.select(category="bfd.state", since=t0)
                 if "-> DOWN" in r.message]
    assert bfd_downs == [], bfd_downs[:3]
    assert dep.all_bfd_up() and dep.all_established()


def test_mtp_jittered_hellos_never_breach_dead_timer():
    """The BFD-style jitter only *shortens* periods, so a healthy link
    can never be falsely declared dead: max observed hello gap stays
    under the dead interval."""
    timers = StackTimers(mtp=MtpTimers(jitter=0.25))
    world, topo, dep = build_and_converge(two_pod_params(), StackKind.MTP,
                                          seed=43, timers=timers)
    from repro.net.capture import Capture
    from repro.core.messages import MtpKeepalive
    from repro.stack.ethernet import ETHERTYPE_MTP

    link = world.find_link(topo.tors[0][0][0], topo.aggs[0][0][0])
    cap = Capture(frame_filter=lambda f: f.ethertype == ETHERTYPE_MTP)
    cap.attach((link.end_a,))
    world.run_for(10 * SECOND)
    times = [r.time for r in cap.records if r.direction.value == "tx"]
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert gaps and max(gaps) < MtpTimers().dead_us
