"""BGP/ECMP(/BFD) on the paper's fabrics: full-system behaviour."""

from __future__ import annotations

import pytest

from repro.harness.convergence import converge_from_cold
from repro.harness.deploy import deploy_bgp
from repro.harness.experiments import StackKind, build_and_converge
from repro.net.world import World
from repro.sim.units import MILLISECOND, SECOND
from repro.stack.addresses import Ipv4Address
from repro.topology.clos import build_folded_clos, two_pod_params
from repro.traffic.generator import ReceiverAnalyzer, TrafficSender


@pytest.fixture(scope="module")
def fabric():
    world, topo, dep = build_and_converge(two_pod_params(), StackKind.BGP)
    return world, topo, dep


def test_every_router_routes_every_rack(fabric):
    world, topo, dep = fabric
    for name, stack in dep.stacks.items():
        for subnet in topo.rack_subnet.values():
            assert stack.table.lookup(subnet.host(1)) is not None, (
                f"{name} missing {subnet}"
            )


def test_tors_use_ecmp_over_both_aggs(fabric):
    world, topo, dep = fabric
    tor = topo.tors[0][0][0]
    remote_rack = topo.rack_subnet[topo.tors[0][1][1]]
    route = dep.stacks[tor].table.lookup(remote_rack.host(1))
    assert len(route.nexthops) == 2, "ToR must ECMP across its two aggs"


def test_aggs_reach_remote_pods_via_both_plane_tops(fabric):
    world, topo, dep = fabric
    agg = topo.aggs[0][0][0]
    remote_rack = topo.rack_subnet[topo.tors[0][1][0]]
    route = dep.stacks[agg].table.lookup(remote_rack.host(1))
    assert len(route.nexthops) == 2


def test_as_paths_are_valley_free(fabric):
    """No route's AS path revisits a tier (guaranteed by the sender-side
    loop check under the RFC 7938 ASN plan)."""
    world, topo, dep = fabric
    for name, speaker in dep.speakers.items():
        for prefix in speaker.loc_rib.prefixes():
            for entry in speaker.loc_rib.chosen(prefix):
                path = entry.attributes.as_path
                assert len(path) == len(set(path)), (name, prefix, path)
                assert len(path) <= 4  # tor-agg-top-agg-tor max


def test_end_to_end_traffic(fabric):
    world, topo, dep = fabric
    src = topo.first_server_of(topo.tors[0][0][0])
    dst = topo.first_server_of(topo.tors[0][1][1])
    sender = TrafficSender(dep.servers[src].udp, topo.server_address(dst),
                           gap_us=1000)
    analyzer = ReceiverAnalyzer(dep.servers[dst].udp)
    sender.start(count=200)
    world.run_for(2 * SECOND)
    assert analyzer.report(sender).lost == 0
    analyzer.close()


def test_bgp_reconvergence_restores_connectivity():
    """After a failure + recovery cycle, the fabric heals completely."""
    world, topo, dep = build_and_converge(two_pod_params(), StackKind.BGP)
    case = topo.failure_cases()["TC2"]
    iface = topo.node(case.node).interfaces[case.interface]
    iface.set_admin(False)
    world.run_for(8 * SECOND)
    # plane-1 spines reach rack 11 only through the failed downlink, so
    # they legitimately lose the route; every ToR and every plane-2
    # device must keep one
    rack11 = Ipv4Address.parse("192.168.11.1")
    plane1 = {case.node, *topo.tops[0][0], topo.aggs[0][1][0]}
    for name, stack in dep.stacks.items():
        if name in plane1:
            assert stack.table.lookup(rack11) is None, (
                f"{name} should have withdrawn rack 11"
            )
        else:
            assert stack.table.lookup(rack11) is not None, name
    iface.set_admin(True)
    world.run_for(15 * SECOND)
    assert dep.all_established()
    tor = topo.tors[0][0][0]
    remote = topo.rack_subnet[topo.tors[0][1][1]]
    assert len(dep.stacks[case.node].table.lookup(remote.host(1)).nexthops) >= 1
    # the ToR regained both uplinks
    local_route = dep.stacks[tor].table.lookup(remote.host(1))
    assert len(local_route.nexthops) == 2


def test_bfd_fabric_converges_and_sessions_up():
    world, topo, dep = build_and_converge(two_pod_params(), StackKind.BGP_BFD)
    assert dep.all_bfd_up()
    assert dep.all_established()


def test_multipath_disabled_single_paths():
    world = World(seed=9)
    topo = build_folded_clos(two_pod_params(), world=world)
    dep = deploy_bgp(topo, multipath=False)
    dep.start()
    converge_from_cold(
        world, dep, lambda: dep.all_established() and dep.fib_complete())
    tor = topo.tors[0][0][0]
    remote = topo.rack_subnet[topo.tors[0][1][1]]
    route = dep.stacks[tor].table.lookup(remote.host(1))
    assert len(route.nexthops) == 1
