"""Oracle-checked failure scenarios, including double failures.

The paper's protocol description covers single failures (TC1-TC4); its
update rules alone would blackhole under some *double* failures (an agg
losing every uplink keeps attracting hashed default-up traffic).  Our
implementation adds default-unreachability updates (DESIGN.md §5);
these tests pin that behaviour against the valley-free reachability
oracle.
"""

from __future__ import annotations

import pytest

from repro.harness.experiments import StackKind, build_and_converge
from repro.harness.failures import FailureInjector
from repro.harness.oracle import (
    compare_with_oracle,
    oracle_reachable,
)
from repro.sim.units import SECOND
from repro.topology.clos import ClosParams, two_pod_params


def converged(kind, params=None, seed=23):
    return build_and_converge(params or two_pod_params(), kind, seed=seed)


class TestOracleItself:
    def test_intact_fabric_fully_reachable(self):
        world, topo, dep = converged(StackKind.MTP)
        for a in topo.all_tors():
            for b in topo.all_tors():
                if a != b:
                    assert oracle_reachable(topo, a, b)

    def test_isolated_rack_detected(self):
        world, topo, dep = converged(StackKind.MTP)
        tor = topo.tors[0][0][0]
        injector = FailureInjector(world)
        # cut both uplinks: rack 11 is gone
        for agg in topo.aggs[0][0]:
            injector.cut_link(tor, agg)
        other = topo.tors[0][1][0]
        assert not oracle_reachable(topo, tor, other)
        assert not oracle_reachable(topo, other, tor)
        # the other racks still see each other
        assert oracle_reachable(topo, topo.tors[0][0][1], other)

    def test_one_sided_failure_blocks_both_directions(self):
        """A one-sided admin-down breaks the link for both directions
        (tx fails at the downed side, rx drops at it too)."""
        world, topo, dep = converged(StackKind.MTP)
        case = topo.failure_cases()["TC1"]
        topo.node(case.node).interfaces[case.interface].set_admin(False)
        # plane 1 can no longer descend to rack 11, but plane 2 can
        assert oracle_reachable(topo, topo.tors[0][1][0], topo.tors[0][0][0])


@pytest.mark.parametrize("kind", [StackKind.MTP, StackKind.BGP])
class TestSingleFailureAgainstOracle:
    def test_all_tc_cases_agree(self, kind):
        for case_name in ("TC1", "TC2", "TC3", "TC4"):
            world, topo, dep = converged(kind)
            case = topo.failure_cases()[case_name]
            topo.node(case.node).interfaces[case.interface].set_admin(False)
            world.run_for(5 * SECOND)
            disagreements = compare_with_oracle(dep, topo)
            assert disagreements == [], (case_name, disagreements)


class TestDoubleFailures:
    def test_agg_losing_both_uplinks_mtp(self):
        """The paper-gap scenario: S-1-1 loses both uplinks; its default
        path is gone but its rack links are fine.  Without the
        default-unreachability extension ToR traffic hashed through it
        would blackhole forever."""
        world, topo, dep = converged(StackKind.MTP)
        agg = topo.aggs[0][0][0]
        injector = FailureInjector(world)
        for top in topo.tops[0][0]:
            injector.cut_link(agg, top)
        world.run_for(5 * SECOND)
        # the agg told its ToRs it can only serve the pod's own roots
        tor = dep.mtp_nodes[topo.tors[0][0][0]]
        assert tor.table.has_default_mark("eth1")
        assert tor.table.default_exceptions("eth1") == {11, 12}
        # inter-pod traffic must avoid the agg, intra-pod may still use it
        assert compare_with_oracle(dep, topo) == []

    def test_agg_losing_both_uplinks_bgp(self):
        world, topo, dep = converged(StackKind.BGP)
        agg = topo.aggs[0][0][0]
        injector = FailureInjector(world)
        for top in topo.tops[0][0]:
            injector.cut_link(agg, top)
        world.run_for(8 * SECOND)
        assert compare_with_oracle(dep, topo) == []

    def test_default_path_restoration(self):
        """Uplinks return: RESTORED_DEFAULT clears the marks and traffic
        may hash through the agg again."""
        world, topo, dep = converged(StackKind.MTP)
        agg = topo.aggs[0][0][0]
        injector = FailureInjector(world)
        for top in topo.tops[0][0]:
            injector.cut_link(agg, top)
        world.run_for(3 * SECOND)
        for top in topo.tops[0][0]:
            injector.restore_link(agg, top)
        world.run_for(5 * SECOND)
        tor = dep.mtp_nodes[topo.tors[0][0][0]]
        assert not tor.table.has_default_mark("eth1")
        assert dep.trees_complete()
        assert compare_with_oracle(dep, topo) == []

    @pytest.mark.parametrize("kind", [StackKind.MTP, StackKind.BGP])
    def test_rack_isolation_detected_by_both(self, kind):
        """Cut both of rack 11's uplinks: everyone must agree rack 11 is
        gone and everything else still works."""
        world, topo, dep = converged(kind)
        tor = topo.tors[0][0][0]
        injector = FailureInjector(world)
        for agg in topo.aggs[0][0]:
            injector.cut_link(tor, agg)
        world.run_for(8 * SECOND)
        assert compare_with_oracle(dep, topo) == []
