"""Smoke tests: every example script runs to completion."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "ToR VID 11" in out
    assert "lost=0" in out


def test_failure_recovery_tc2():
    out = run_example("failure_recovery.py", "TC2")
    assert "MR-MTP" in out and "BGP/ECMP/BFD" in out
    assert "convergence time" in out
    assert "blast radius" in out


def test_meshed_tree_walkthrough():
    out = run_example("meshed_tree_walkthrough.py")
    assert "Advertise" in out and "Join Request" in out
    assert "VID Offer" in out and "Accept" in out
    assert "Data: 06" in out  # the Fig. 10 keepalive


def test_scalability_study_small():
    out = run_example("scalability_study.py", "--max-pods", "2")
    assert "four tiers" in out
    assert "depth 4" in out


@pytest.mark.slow
def test_protocol_comparison():
    out = run_example("protocol_comparison.py")
    assert "Fig. 4" in out and "Fig. 5" in out and "Fig. 6" in out
    assert "Listings 1/2" in out and "Listings 3/5" in out


@pytest.mark.slow
def test_packet_loss_study():
    out = run_example("packet_loss_study.py", "--rate", "500")
    assert "Fig. 7" in out and "Fig. 8" in out


def test_export_pcap(tmp_path):
    out = run_example("export_pcap.py", "--outdir", str(tmp_path))
    assert "wrote" in out and "Data: " not in out  # summaries, not dumps
    pcaps = list(tmp_path.glob("*.pcap"))
    assert len(pcaps) == 3
    from repro.wire.pcap import read_pcap

    for path in pcaps:
        assert read_pcap(path), f"{path} empty"


def test_traceroute_comparison():
    out = run_example("traceroute_comparison.py")
    assert "[destination]" in out
    assert out.count("traceroute to") == 2


@pytest.mark.slow
def test_multi_seed_study():
    out = run_example("multi_seed_study.py", "--seeds", "2")
    assert "±" in out and "speedup" in out


@pytest.mark.slow
def test_html_report(tmp_path):
    out = run_example("html_report.py", "--out", str(tmp_path / "r.html"))
    assert "wrote" in out
    text = (tmp_path / "r.html").read_text()
    assert text.count("<svg") == 4
    assert "Fig. 4" in text and "Fig. 7" in text
