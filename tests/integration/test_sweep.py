"""Robustness sweep: sampled points fast, exhaustive under -m slow."""

from __future__ import annotations

import pytest

from repro.harness.experiments import StackKind, build_and_converge
from repro.harness.sweep import (
    fabric_failure_points,
    single_failure_sweep,
    summarize,
)
from repro.topology.clos import two_pod_params


def test_failure_point_enumeration():
    world, topo, dep = build_and_converge(two_pod_params(), StackKind.MTP)
    points = fabric_failure_points(topo)
    # 2-PoD: 8 ToR-agg links + 8 agg-top links, both ends = 32 points
    assert len(points) == 32
    assert all(p.node != p.peer for p in points)


@pytest.mark.parametrize("kind", [StackKind.MTP, StackKind.BGP])
def test_sampled_failures_leave_no_blackholes(kind):
    world, topo, dep = build_and_converge(two_pod_params(), kind)
    points = fabric_failure_points(topo)
    sample = points[:: max(1, len(points) // 6)]  # ~6 spread-out points
    results = single_failure_sweep(two_pod_params(), kind, points=sample)
    assert all(r.ok for r in results), summarize(results)
    assert all(r.pairs_checked == 12 for r in results)  # 4 ToRs -> 12 pairs


@pytest.mark.slow
@pytest.mark.parametrize("kind", [StackKind.MTP, StackKind.BGP])
def test_exhaustive_single_failure_sweep(kind):
    results = single_failure_sweep(two_pod_params(), kind)
    assert len(results) == 32
    assert all(r.ok for r in results), summarize(results)
