"""Cheap single-run versions of the paper's headline results.

The benchmarks regenerate the full figures; these tests pin the core
qualitative claims so a regression shows up in `pytest tests/` without
running the benchmark suite.
"""

from __future__ import annotations

import pytest

from repro.sim.units import MILLISECOND
from repro.topology.clos import two_pod_params
from repro.harness.experiments import (
    StackKind,
    run_failure_experiment,
    run_packet_loss_experiment,
)


@pytest.fixture(scope="module")
def tc1_results():
    return {
        kind: run_failure_experiment(two_pod_params(), kind, "TC1")
        for kind in StackKind
    }


@pytest.fixture(scope="module")
def tc2_results():
    return {
        kind: run_failure_experiment(two_pod_params(), kind, "TC2")
        for kind in StackKind
    }


def test_fig4_shape_remote_detection(tc1_results):
    """TC1: MR-MTP (dead timer 100 ms) << BFD (300 ms) << BGP (hold 3 s)."""
    mtp = tc1_results[StackKind.MTP].convergence_us
    bfd = tc1_results[StackKind.BGP_BFD].convergence_us
    bgp = tc1_results[StackKind.BGP].convergence_us
    assert mtp < bfd < bgp
    assert mtp <= 120 * MILLISECOND
    assert bfd <= 400 * MILLISECOND
    assert bgp >= 2000 * MILLISECOND


def test_fig4_shape_local_detection(tc2_results):
    """TC2: every stack converges faster than its detection time."""
    for kind, result in tc2_results.items():
        assert result.convergence_us < 50 * MILLISECOND, kind


def test_fig5_shape(tc1_results, tc2_results):
    for results in (tc1_results, tc2_results):
        assert (results[StackKind.MTP].blast_radius
                <= results[StackKind.BGP].blast_radius)
        assert (results[StackKind.BGP].blast_radius
                == results[StackKind.BGP_BFD].blast_radius)


def test_fig6_shape(tc1_results):
    """MR-MTP's update cascade lands near the paper's 120 B and is
    several times cheaper than BGP's."""
    mtp = tc1_results[StackKind.MTP].control_bytes
    bgp = tc1_results[StackKind.BGP].control_bytes
    assert 96 <= mtp <= 144  # paper: 120 B, ±20%
    assert bgp >= 3 * mtp


def test_fig7_shape_single_case():
    mtp = run_packet_loss_experiment(two_pod_params(), StackKind.MTP, "TC2",
                                     direction="near")
    bgp = run_packet_loss_experiment(two_pod_params(), StackKind.BGP, "TC2",
                                     direction="near")
    assert mtp.lost < bgp.lost / 10
    assert mtp.lost <= 130  # one dead timer at 1000 pps


def test_fig8_shape_single_case():
    mtp = run_packet_loss_experiment(two_pod_params(), StackKind.MTP, "TC1",
                                     direction="far")
    assert 20 <= mtp.lost <= 130  # the dead-timer hole, nothing more
    mtp_quiet = run_packet_loss_experiment(two_pod_params(), StackKind.MTP,
                                           "TC2", direction="far")
    assert mtp_quiet.lost <= 10


@pytest.mark.parametrize("pods,expected_tc1,expected_tc3", [(2, 3, 1), (4, 7, 3)])
def test_fig5_paper_counting_rule(pods, expected_tc1, expected_tc3):
    """Under the paper's per-case census the MR-MTP radii are exactly
    its published 3/1 (2-PoD) and 7/3 (4-PoD):

    * TC1/TC2 — 'ToRs ... will record that a certain port cannot be
      used': count ToRs that marked a port;
    * TC3/TC4 2-PoD — 'S2_1 will remove any VIDs acquired from S1_1':
      count top spines that pruned; 4-PoD — 'all the tier 2 spines
      except S1_1': count aggs that marked a port.
    """
    from repro.topology.clos import ClosParams

    params = ClosParams(num_pods=pods)
    tc1 = run_failure_experiment(params, StackKind.MTP, "TC1")
    tors = {f"L-{p}-{t}" for p in range(1, pods + 1) for t in (1, 2)}
    tor_updates = [n for n in tc1.blast_routers if n in tors]
    assert len(tor_updates) == expected_tc1

    tc3 = run_failure_experiment(params, StackKind.MTP, "TC3")
    if pods == 2:
        tops = [n for n in tc3.blast_routers if n.startswith("T-")]
        assert len(tops) == expected_tc3
    else:
        aggs = [n for n in tc3.blast_routers
                if n.startswith("S-") and n != "S-1-1"]
        assert len(aggs) == expected_tc3
