"""pcap export: files parse back and carry the captured frames."""

from __future__ import annotations

import struct
from pathlib import Path

import pytest

from repro.core.messages import MtpKeepalive
from repro.net.capture import Capture, Direction
from repro.net.world import World
from repro.stack.addresses import BROADCAST_MAC
from repro.stack.ethernet import ETHERTYPE_MTP, EthernetFrame
from repro.wire.codec import decode_frame
from repro.wire.pcap import PCAP_MAGIC, PcapWriter, read_pcap, write_capture


def captured_keepalives(world, count=3):
    a = world.add_node("A")
    b = world.add_node("B")
    link = world.connect(a, b)
    cap = Capture()
    cap.attach((link.end_a,))
    ia = a.interfaces["eth1"]
    for i in range(count):
        world.sim.schedule_at(1000 * (i + 1), ia.send, EthernetFrame(
            BROADCAST_MAC, ia.mac, ETHERTYPE_MTP, MtpKeepalive()))
    world.run()
    return cap


def test_write_and_read_back(world, tmp_path: Path):
    cap = captured_keepalives(world)
    path = tmp_path / "trace.pcap"
    count = write_capture(cap, path)
    assert count == 3
    records = read_pcap(path)
    assert len(records) == 3
    ts, blob = records[0]
    assert ts == 1000
    assert len(blob) == 60  # padded min frame
    decoded = decode_frame(blob, payload_len=1)
    assert isinstance(decoded.payload, MtpKeepalive)


def test_global_header_layout(world, tmp_path: Path):
    cap = captured_keepalives(world, count=1)
    path = tmp_path / "t.pcap"
    write_capture(cap, path)
    head = path.read_bytes()[:24]
    magic, major, minor, _tz, _sig, snaplen, linktype = struct.unpack(
        "!IHHiIII", head)
    assert magic == PCAP_MAGIC
    assert (major, minor) == (2, 4)
    assert linktype == 1  # Ethernet


def test_direction_filter_avoids_duplicates(world, tmp_path: Path):
    a = world.add_node("A")
    b = world.add_node("B")
    link = world.connect(a, b)
    cap = Capture()
    cap.attach((link.end_a, link.end_b))  # both ends tapped
    ia = a.interfaces["eth1"]
    ia.send(EthernetFrame(BROADCAST_MAC, ia.mac, ETHERTYPE_MTP, MtpKeepalive()))
    world.run()
    assert len(cap.records) == 2  # tx at A, rx at B
    path = tmp_path / "t.pcap"
    assert write_capture(cap, path) == 1
    assert write_capture(cap, path, direction=None) == 2


def test_time_window(world, tmp_path: Path):
    cap = captured_keepalives(world, count=3)  # at 1000, 2000, 3000
    path = tmp_path / "t.pcap"
    assert write_capture(cap, path, since=1500, until=2500) == 1
    assert read_pcap(path)[0][0] == 2000


def test_snaplen_truncates(world, tmp_path: Path):
    cap = captured_keepalives(world, count=1)
    path = tmp_path / "t.pcap"
    with path.open("wb") as stream:
        writer = PcapWriter(stream, snaplen=20)
        for rec in cap.records:
            writer.write_record(rec)
    ts, blob = read_pcap(path)[0]
    assert len(blob) == 20


def test_read_rejects_other_files(tmp_path: Path):
    bad = tmp_path / "not.pcap"
    bad.write_bytes(b"\x00" * 40)
    with pytest.raises(ValueError):
        read_pcap(bad)


def test_real_fabric_capture_exports(tmp_path: Path):
    """A converged MR-MTP fabric's control traffic exports to pcap and
    every frame decodes back."""
    from repro.harness.experiments import StackKind, build_and_converge
    from repro.topology.clos import two_pod_params

    world, topo, dep = build_and_converge(two_pod_params(), StackKind.MTP)
    link = world.find_link(topo.tors[0][0][0], topo.aggs[0][0][0])
    cap = Capture()
    cap.attach((link.end_a, link.end_b))
    world.run_for(500_000)
    path = tmp_path / "fabric.pcap"
    count = write_capture(cap, path)
    assert count > 0
    for ts, blob in read_pcap(path):
        frame = decode_frame(blob)
        assert frame.ethertype == ETHERTYPE_MTP
