"""Wire codec: byte-exact encoding, checksums, round-trips."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, strategies as st

from repro.bfd.messages import BfdControlPacket, BfdState
from repro.bgp.messages import BgpKeepalive, BgpUpdate, PathAttributes
from repro.core.messages import (
    MtpAdvertise,
    MtpData,
    MtpFullHello,
    MtpJoin,
    MtpKeepalive,
    MtpRestored,
    MtpUnreachable,
    MtpUpdateLost,
)
from repro.core.vid import Vid
from repro.stack.addresses import (
    BROADCAST_MAC,
    Ipv4Address,
    Ipv4Network,
    MacAddress,
)
from repro.stack.arp import ArpMessage, ArpOp
from repro.stack.ethernet import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    ETHERTYPE_MTP,
    EthernetFrame,
)
from repro.stack.ipv4 import Ipv4Packet, PROTO_TCP, PROTO_UDP
from repro.stack.payload import RawBytes
from repro.stack.tcp_segment import TcpFlags, TcpSegment
from repro.stack.udp import UdpDatagram
from repro.traffic.generator import SeqPayload
from repro.wire.codec import (
    WireError,
    decode_bfd,
    decode_frame,
    decode_ipv4,
    decode_mtp_message,
    encode_bfd,
    encode_frame,
    encode_ipv4,
    encode_mtp_message,
    internet_checksum,
)

MAC_A = MacAddress.from_index(1)
MAC_B = MacAddress.from_index(2)
IP_A = Ipv4Address.parse("172.16.0.0")
IP_B = Ipv4Address.parse("172.16.0.1")


class TestChecksum:
    def test_rfc1071_example(self):
        # classic example: 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 -> 0x220d
        blob = bytes.fromhex("0001f203f4f5f6f7")
        assert internet_checksum(blob) == 0x220D

    def test_checksum_of_checksummed_data_is_zero(self):
        blob = bytes.fromhex("0001f203f4f5f6f7")
        check = internet_checksum(blob)
        assert internet_checksum(blob + struct.pack("!H", check)) == 0

    def test_odd_length_padded(self):
        assert internet_checksum(b"\xff") == internet_checksum(b"\xff\x00")


class TestBfdCodec:
    def test_is_24_bytes(self):
        packet = BfdControlPacket(BfdState.UP, 3, 1, 2, 100_000, 100_000)
        assert len(encode_bfd(packet)) == 24

    def test_roundtrip(self):
        packet = BfdControlPacket(BfdState.INIT, 5, 42, 99, 50_000, 60_000,
                                  poll=True)
        assert decode_bfd(encode_bfd(packet)) == packet

    def test_rejects_short(self):
        with pytest.raises(WireError):
            decode_bfd(b"\x00" * 10)


class TestMtpCodec:
    def test_keepalive_is_the_paper_byte(self):
        assert encode_mtp_message(MtpKeepalive()) == b"\x06"

    @pytest.mark.parametrize("message", [
        MtpKeepalive(),
        MtpFullHello(tier=3),
        MtpFullHello(tier=2, gen=9),
        MtpAdvertise(vids=(Vid.parse("11"), Vid.parse("12.1"))),
        MtpJoin(vids=(Vid.parse("11.1.2"),)),
        MtpUpdateLost(vids=(Vid.parse("11.1"), Vid.parse("12.1"))),
        MtpUnreachable(roots=(11, 300)),
        MtpRestored(roots=(14,)),
    ])
    def test_roundtrip(self, message):
        blob = encode_mtp_message(message)
        assert decode_mtp_message(blob) == message
        # the simulator's wire_size model matches the real encoding
        assert len(blob) == message.wire_size

    def test_data_roundtrip_with_inner_packet(self):
        inner = Ipv4Packet(Ipv4Address.parse("192.168.11.1"),
                           Ipv4Address.parse("192.168.14.1"),
                           PROTO_UDP, UdpDatagram(40000, 7777, SeqPayload(5, 100)))
        message = MtpData(src_root=11, dst_root=14, packet=inner)
        blob = encode_mtp_message(message)
        assert len(blob) == message.wire_size
        decoded = decode_mtp_message(blob)
        assert decoded.src_root == 11 and decoded.dst_root == 14
        assert decoded.packet.payload.payload.seq == 5


class TestIpCodec:
    def test_ipv4_header_checksum_valid(self):
        packet = Ipv4Packet(IP_A, IP_B, PROTO_UDP,
                            UdpDatagram(1, 2, RawBytes(10)))
        blob = encode_ipv4(packet)
        assert internet_checksum(blob[:20]) == 0

    def test_corrupted_header_detected(self):
        packet = Ipv4Packet(IP_A, IP_B, PROTO_UDP,
                            UdpDatagram(1, 2, RawBytes(10)))
        blob = bytearray(encode_ipv4(packet))
        blob[8] ^= 0xFF  # flip the TTL
        with pytest.raises(WireError):
            decode_ipv4(bytes(blob))

    def test_udp_bfd_roundtrip(self):
        bfd = BfdControlPacket(BfdState.UP, 3, 7, 8, 100_000, 100_000)
        packet = Ipv4Packet(IP_A, IP_B, PROTO_UDP,
                            UdpDatagram(49152, 3784, bfd), ttl=255)
        decoded = decode_ipv4(encode_ipv4(packet))
        assert decoded == packet

    def test_tcp_bgp_roundtrip(self):
        update = BgpUpdate(
            withdrawn=(Ipv4Network.parse("192.168.11.0/24"),),
            nlri=(Ipv4Network.parse("192.168.12.0/24"),),
            attributes=PathAttributes(as_path=(64513,), next_hop=IP_A),
        )
        seg = TcpSegment(179, 50000, seq=1000, ack=2000,
                         flags=TcpFlags.ACK | TcpFlags.PSH, payload=update)
        packet = Ipv4Packet(IP_A, IP_B, PROTO_TCP, seg)
        decoded = decode_ipv4(encode_ipv4(packet))
        assert decoded.payload.payload == update
        assert decoded.payload.seq == 1000

    def test_tcp_lengths_match_model(self):
        """Encoded TCP sizes equal the simulator's wire_size model for
        both SYN (40 B header) and established (32 B header) segments."""
        syn = TcpSegment(50000, 179, seq=0, ack=0, flags=TcpFlags.SYN)
        ka = TcpSegment(179, 50000, seq=1, ack=1,
                        flags=TcpFlags.ACK | TcpFlags.PSH,
                        payload=BgpKeepalive())
        for seg in (syn, ka):
            packet = Ipv4Packet(IP_A, IP_B, PROTO_TCP, seg)
            assert len(encode_ipv4(packet)) == packet.wire_size


class TestFrameCodec:
    def test_mtp_keepalive_frame_padded_to_60(self):
        frame = EthernetFrame(BROADCAST_MAC, MAC_A, ETHERTYPE_MTP,
                              MtpKeepalive())
        blob = encode_frame(frame)
        assert len(blob) == 60
        assert blob[14] == 0x06  # the Fig. 10 payload byte
        assert blob[12:14] == b"\x88\x50"
        assert blob[:6] == b"\xff" * 6

    def test_unpadded_option(self):
        frame = EthernetFrame(BROADCAST_MAC, MAC_A, ETHERTYPE_MTP,
                              MtpKeepalive())
        assert len(encode_frame(frame, pad_to_min=False)) == 15

    def test_arp_roundtrip(self):
        msg = ArpMessage(ArpOp.REQUEST, MAC_A, IP_A, IP_B)
        frame = EthernetFrame(BROADCAST_MAC, MAC_A, ETHERTYPE_ARP, msg)
        decoded = decode_frame(encode_frame(frame), payload_len=28)
        assert decoded.payload == msg

    def test_ip_frame_roundtrip_through_padding(self):
        """IPv4 self-describes its length, so min-frame padding does not
        corrupt decoding."""
        packet = Ipv4Packet(IP_A, IP_B, PROTO_UDP,
                            UdpDatagram(40000, 7777, SeqPayload(1, 8)))
        frame = EthernetFrame(MAC_B, MAC_A, ETHERTYPE_IPV4, packet)
        decoded = decode_frame(encode_frame(frame))
        assert decoded.payload == packet

    def test_encoded_length_matches_padded_wire_size(self):
        packet = Ipv4Packet(IP_A, IP_B, PROTO_UDP,
                            UdpDatagram(1, 2, RawBytes(100)))
        frame = EthernetFrame(MAC_B, MAC_A, ETHERTYPE_IPV4, packet)
        assert len(encode_frame(frame)) == frame.padded_wire_size

    @given(
        vids=st.lists(
            st.builds(
                Vid,
                st.lists(st.integers(min_value=1, max_value=65535),
                         min_size=1, max_size=4).map(tuple),
            ),
            min_size=1, max_size=5, unique=True,
        )
    )
    def test_mtp_vid_list_roundtrip_property(self, vids):
        message = MtpAdvertise(vids=tuple(vids))
        frame = EthernetFrame(BROADCAST_MAC, MAC_A, ETHERTYPE_MTP, message)
        decoded = decode_frame(encode_frame(frame),
                               payload_len=message.wire_size)
        assert decoded.payload == message


class TestIcmpCodec:
    def test_echo_roundtrip(self):
        from repro.stack.icmp import IcmpMessage, IcmpType
        from repro.wire.codec import decode_icmp, encode_icmp

        message = IcmpMessage(IcmpType.ECHO_REQUEST, identifier=7,
                              sequence=3, data_bytes=56)
        blob = encode_icmp(message)
        assert len(blob) == message.wire_size == 64
        assert decode_icmp(blob) == message

    def test_error_roundtrip(self):
        from repro.stack.icmp import IcmpMessage, IcmpType
        from repro.wire.codec import decode_icmp, encode_icmp

        message = IcmpMessage(IcmpType.TIME_EXCEEDED, quoted_bytes=28)
        assert decode_icmp(encode_icmp(message)) == message

    def test_checksum_valid(self):
        from repro.stack.icmp import IcmpMessage, IcmpType
        from repro.wire.codec import encode_icmp, internet_checksum

        blob = encode_icmp(IcmpMessage(IcmpType.ECHO_REPLY, identifier=1,
                                       sequence=2, data_bytes=10))
        assert internet_checksum(blob) == 0

    def test_ping_packet_through_frame_codec(self):
        from repro.stack.icmp import IcmpMessage, IcmpType
        from repro.stack.ipv4 import PROTO_ICMP

        packet = Ipv4Packet(IP_A, IP_B, PROTO_ICMP,
                            IcmpMessage(IcmpType.ECHO_REQUEST, identifier=9,
                                        sequence=1, data_bytes=56))
        frame = EthernetFrame(MAC_B, MAC_A, ETHERTYPE_IPV4, packet)
        decoded = decode_frame(encode_frame(frame))
        assert decoded.payload == packet


class TestDefaultUnreachableCodec:
    def test_unreachable_default_roundtrip(self):
        from repro.core.messages import MtpUnreachableDefault
        from repro.wire.codec import decode_mtp_message, encode_mtp_message

        for exceptions in ((), (11,), (11, 12, 300)):
            message = MtpUnreachableDefault(except_roots=exceptions)
            blob = encode_mtp_message(message)
            assert len(blob) == message.wire_size
            assert decode_mtp_message(blob) == message

    def test_restored_default_roundtrip(self):
        from repro.core.messages import MtpRestoredDefault
        from repro.wire.codec import decode_mtp_message, encode_mtp_message

        message = MtpRestoredDefault()
        blob = encode_mtp_message(message)
        assert len(blob) == message.wire_size == 1
        assert decode_mtp_message(blob) == message

    def test_double_failure_capture_exports(self, tmp_path):
        """A run exercising the default-unreachability path exports to
        pcap without codec errors."""
        from repro.harness.experiments import StackKind, build_and_converge
        from repro.harness.failures import FailureInjector
        from repro.net.capture import Capture
        from repro.topology.clos import two_pod_params
        from repro.wire.pcap import read_pcap, write_capture
        from repro.wire.codec import decode_frame

        world, topo, dep = build_and_converge(two_pod_params(), StackKind.MTP)
        agg = topo.aggs[0][0][0]
        link = world.find_link(topo.tors[0][0][0], agg)
        capture = Capture()
        capture.attach((link.end_a, link.end_b))
        injector = FailureInjector(world)
        for top in topo.tops[0][0]:
            injector.cut_link(agg, top)
        world.run_for(2_000_000)
        path = tmp_path / "double.pcap"
        count = write_capture(capture, path)
        assert count > 0
        for ts, blob in read_pcap(path):
            decode_frame(blob)  # every frame must decode
