"""Scenario runs: golden equality with the classic experiment, digest
determinism, cache replay, and serial-vs-parallel byte-identity."""

from __future__ import annotations

import pytest

from repro.harness.cache import ResultCache
from repro.harness.experiments import run_failure_experiment
from repro.harness.parallel import FanoutReport, assert_fanout_deterministic
from repro.scenario import (
    ScenarioRunSpec,
    get_scenario,
    run_scenario,
    run_scenario_suite,
    run_scenario_task,
    scenario_suite_specs,
    scenario_task_key,
)
from repro.stacks import resolve_spec
from repro.topology.clos import two_pod_params

from tests.harness.test_golden_metrics import GOLDEN


# ----------------------------------------------------------------------
# TC1-TC4 as scenarios replay the classic experiment exactly
# ----------------------------------------------------------------------
@pytest.mark.parametrize("stack,case", sorted(GOLDEN))
def test_tc_scenarios_reproduce_golden_metrics(stack, case):
    expected_conv, expected_bytes, expected_updates, expected_blast = \
        GOLDEN[(stack, case)]
    metrics = run_scenario(get_scenario(case.lower()), two_pod_params(),
                           stack, seed=0)
    assert metrics.convergence_us == expected_conv, (
        f"scenario {case} on {stack} diverged from the classic "
        f"experiment: {metrics.convergence_us} us != {expected_conv} us")
    assert metrics.control_bytes == expected_bytes
    assert metrics.update_count == expected_updates
    assert metrics.blast_routers == expected_blast


def test_tc_scenario_matches_classic_at_nonzero_seed():
    """Equality must hold per seed, not just at the golden seed 0."""
    classic = run_failure_experiment(two_pod_params(), "mtp", "TC2", seed=3)
    metrics = run_scenario(get_scenario("tc2"), two_pod_params(), "mtp",
                           seed=3)
    assert metrics.convergence_us == classic.convergence_us
    assert metrics.control_bytes == classic.control_bytes
    assert metrics.blast_routers == classic.blast_routers


# ----------------------------------------------------------------------
# digests, cache, parallel
# ----------------------------------------------------------------------
def _spec(scenario_name: str, stack: str = "mtp",
          seed: int = 0) -> ScenarioRunSpec:
    return ScenarioRunSpec(params=two_pod_params(),
                           stack=resolve_spec(stack),
                           scenario=get_scenario(scenario_name), seed=seed)


def test_same_scenario_and_seed_same_digest():
    first = run_scenario_task(_spec("tc1"))
    second = run_scenario_task(_spec("tc1"))
    assert first.digest == second.digest
    assert len(first.digest) == 64  # SHA-256 hex


def test_digest_separates_seeds_and_scenarios():
    base = run_scenario_task(_spec("tc1"))
    assert run_scenario_task(_spec("tc1", seed=1)).digest != base.digest
    assert run_scenario_task(_spec("tc2")).digest != base.digest


def test_task_key_depends_on_scenario_content():
    keys = {scenario_task_key(_spec(name)) for name in ("tc1", "tc2")}
    assert len(keys) == 2
    assert scenario_task_key(_spec("tc1")) == scenario_task_key(_spec("tc1"))


def test_second_suite_run_is_served_from_cache(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    kwargs = dict(params=two_pod_params(),
                  scenarios=[get_scenario("tc1"), get_scenario("tc4")],
                  stacks=["mtp"], seed=0, cache=cache)
    cold_report, warm_report = FanoutReport(), FanoutReport()
    cold = run_scenario_suite(report=cold_report, **kwargs)
    warm = run_scenario_suite(report=warm_report, **kwargs)
    assert cold_report.executed == 2 and cold_report.cached == 0
    assert warm_report.executed == 0 and warm_report.cached == 2
    assert [o.digest for o in warm] == [o.digest for o in cold]
    assert [o.metrics for o in warm] == [o.metrics for o in cold]


def test_serial_and_parallel_digests_are_identical():
    specs = scenario_suite_specs(
        two_pod_params(), [get_scenario("tc2"), get_scenario("tc4")],
        ["mtp", "bgp-bfd"], seed=0)
    digests = assert_fanout_deterministic(
        specs, run_scenario_task, lambda o: o.digest, jobs=2)
    assert len(digests) == len(specs)
