"""Scenario data model: validation, canonical JSON, round-trips."""

from __future__ import annotations

import json

import pytest

from repro.scenario import (
    SCENARIO_SCHEMA,
    Scenario,
    ScenarioError,
    ScenarioEvent,
    canonical_scenarios,
)


def simple_scenario(**overrides) -> Scenario:
    kwargs = dict(
        name="t",
        events=(ScenarioEvent(op="iface_down", at_ms=0,
                              target="case:TC1"),),
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


# ----------------------------------------------------------------------
# event validation
# ----------------------------------------------------------------------
def test_unknown_op_rejected():
    with pytest.raises(ScenarioError, match="unknown scenario op"):
        ScenarioEvent(op="meteor_strike", target="tor[0]")


def test_missing_required_field_rejected():
    with pytest.raises(ScenarioError, match="missing field 'target'"):
        ScenarioEvent(op="iface_down")
    with pytest.raises(ScenarioError, match="missing field"):
        ScenarioEvent(op="traffic_burst", src="server:tor[0]",
                      dst="server:tor[1]")


def test_field_not_valid_for_op_rejected():
    with pytest.raises(ScenarioError, match="not valid"):
        ScenarioEvent(op="iface_down", target="case:TC1", rate_pps=100)
    with pytest.raises(ScenarioError, match="not valid"):
        ScenarioEvent(op="pause", duration_ms=100, label="x")


def test_negative_and_nonpositive_values_rejected():
    with pytest.raises(ScenarioError, match="at_ms"):
        ScenarioEvent(op="iface_down", at_ms=-1, target="case:TC1")
    with pytest.raises(ScenarioError, match="count"):
        ScenarioEvent(op="flap_train", target="case:TC1", count=0,
                      down_ms=100)
    with pytest.raises(ScenarioError, match="rate_pps"):
        ScenarioEvent(op="traffic_burst", src="a", dst="b", rate_pps=-5,
                      count=10)


def test_flap_and_traffic_horizons():
    flap = ScenarioEvent(op="flap_train", at_ms=100, target="case:TC1",
                         count=3, down_ms=300, up_ms=700)
    assert flap.duration_ms_total() == 3 * (300 + 700)
    burst = ScenarioEvent(op="traffic_burst", src="a", dst="b",
                          rate_pps=500, count=2000)
    assert burst.duration_ms_total() == 4000
    pause = ScenarioEvent(op="pause", at_ms=0, duration_ms=1234)
    assert pause.duration_ms_total() == 1234


# ----------------------------------------------------------------------
# scenario validation
# ----------------------------------------------------------------------
def test_empty_scenario_rejected():
    with pytest.raises(ScenarioError, match="no events"):
        Scenario(name="empty")


def test_events_must_be_time_ordered():
    with pytest.raises(ScenarioError, match="ordered"):
        Scenario(name="x", events=(
            ScenarioEvent(op="iface_down", at_ms=100, target="case:TC1"),
            ScenarioEvent(op="iface_up", at_ms=50, target="case:TC1"),
        ))


def test_bad_settle_rejected():
    with pytest.raises(ScenarioError, match="settle"):
        simple_scenario(settle="whenever")
    with pytest.raises(ScenarioError, match="settle"):
        simple_scenario(settle=-3)
    assert simple_scenario(settle=0).settle == 0
    assert simple_scenario(settle="keepalive-phase").settle == \
        "keepalive-phase"


def test_horizon_covers_last_event_tail():
    scenario = Scenario(name="x", events=(
        ScenarioEvent(op="node_crash", at_ms=0, target="agg[0]"),
        ScenarioEvent(op="pause", at_ms=1000, duration_ms=2000),
    ))
    assert scenario.horizon_ms() == 3000


def test_symbolic_targets_in_first_use_order():
    scenario = Scenario(name="x", events=(
        ScenarioEvent(op="traffic_burst", at_ms=0, src="server:tor[0]",
                      dst="server:tor[3]", rate_pps=500, count=5),
        ScenarioEvent(op="node_crash", at_ms=10, target="any-agg"),
        ScenarioEvent(op="node_restart", at_ms=20, target="any-agg"),
    ))
    assert scenario.symbolic_targets() == (
        "server:tor[0]", "server:tor[3]", "any-agg")


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
def test_canonical_json_roundtrip_of_every_library_scenario():
    for scenario in canonical_scenarios().values():
        text = scenario.to_json()
        assert Scenario.from_json(text) == scenario
        # canonical form: sorted keys, no whitespace noise, fixed schema
        payload = json.loads(text)
        assert payload["schema"] == SCENARIO_SCHEMA
        assert " " not in text.split('"description"')[0]


def test_event_payload_omits_unset_fields():
    event = ScenarioEvent(op="iface_down", at_ms=5, target="case:TC2")
    assert event.to_payload() == {"op": "iface_down", "at_ms": 5,
                                  "target": "case:TC2"}


def test_from_payload_rejects_unknown_fields_and_schema():
    good = simple_scenario().to_payload()
    bad = dict(good, voltage=11)
    with pytest.raises(ScenarioError, match="unknown fields"):
        Scenario.from_payload(bad)
    with pytest.raises(ScenarioError, match="schema"):
        Scenario.from_payload(dict(good, schema=99))
    with pytest.raises(ScenarioError, match="unknown fields"):
        Scenario.from_payload(dict(
            good, events=[{"op": "iface_down", "target": "x",
                           "blast_radius": 3}]))


def test_from_json_rejects_malformed_text():
    with pytest.raises(ScenarioError, match="not valid JSON"):
        Scenario.from_json("{nope")


# ----------------------------------------------------------------------
# impairment events (schema 2)
# ----------------------------------------------------------------------
def test_impair_event_validates_profile_up_front():
    # a bare impair with no knobs is a no-op: rejected
    with pytest.raises(ScenarioError, match="no-op"):
        ScenarioEvent(op="impair", target="case:TC1")
    with pytest.raises(ScenarioError, match="unknown impairment preset"):
        ScenarioEvent(op="impair", target="case:TC1", profile="sparkly")
    with pytest.raises(ScenarioError, match="probability"):
        ScenarioEvent(op="impair", target="case:TC1", loss=1.5)
    with pytest.raises(ScenarioError, match="direction"):
        ScenarioEvent(op="impair", target="case:TC1", loss=0.1,
                      direction="sideways")


def test_impair_event_resolves_preset_with_overrides():
    event = ScenarioEvent(op="impair", target="case:TC1", profile="gray",
                          loss=0.3, direction="rx")
    profile = event.impairment_profile()
    assert profile.loss == 0.3
    assert profile.corrupt > 0  # inherited from the preset


def test_impair_fields_rejected_on_other_ops():
    with pytest.raises(ScenarioError, match="not valid"):
        ScenarioEvent(op="iface_down", target="case:TC1", loss=0.1)


def test_impair_event_payload_roundtrip():
    event = ScenarioEvent(op="impair", at_ms=10, target="case:TC1",
                          loss=0.1, jitter_us=200, direction="both")
    assert event.to_payload() == {
        "op": "impair", "at_ms": 10, "target": "case:TC1",
        "direction": "both", "loss": 0.1, "jitter_us": 200}
    assert ScenarioEvent.from_payload(event.to_payload()) == event


def test_impair_is_not_a_down_op():
    """An impaired link is degraded, not down: detections it provokes
    count as false positives, and the detection-time metric ignores it."""
    from repro.scenario.model import DOWN_OPS
    assert "impair" not in DOWN_OPS
    assert "clear_impairment" not in DOWN_OPS
