"""The canonical scenario library runs to completion on every
registered stack — the library-wide acceptance matrix."""

from __future__ import annotations

import pytest

from repro.scenario import (
    CANONICAL,
    ScenarioError,
    canonical_scenarios,
    get_scenario,
    run_scenario,
)
from repro.stacks import available_stacks
from repro.topology.clos import two_pod_params


def test_library_names_and_lookup():
    names = list(canonical_scenarios())
    assert names == ["tc1", "tc2", "tc3", "tc4", "flap-storm",
                     "double-cut", "drain", "rolling-restart",
                     "gray-uplink", "lossy-spine", "incast-storm",
                     "hotspot-drain", "gray-uplink-recovery"]
    assert get_scenario("flap-storm").name == "flap-storm"
    with pytest.raises(ScenarioError, match="unknown scenario"):
        get_scenario("tc9")


@pytest.mark.parametrize("stack", sorted(available_stacks()))
@pytest.mark.parametrize("scenario", CANONICAL,
                         ids=[s.name for s in CANONICAL])
def test_every_scenario_completes_on_every_stack(scenario, stack):
    metrics = run_scenario(scenario, two_pod_params(), stack, seed=0)
    assert metrics.scenario == scenario.name
    assert metrics.stack == stack
    assert metrics.convergence_us >= 0
    assert metrics.settle_us >= 0
    assert metrics.received <= metrics.sent
    assert metrics.lost == metrics.sent - metrics.received
    if scenario.name == "rolling-restart":
        assert [c.label for c in metrics.checkpoints] == ["wave-1",
                                                          "wave-2"]
        # the second wave happens after the first: counters only grow
        assert metrics.checkpoints[1].update_count >= \
            metrics.checkpoints[0].update_count
        assert metrics.checkpoints[1].time_us > \
            metrics.checkpoints[0].time_us
    else:
        assert metrics.checkpoints == []


@pytest.mark.parametrize("stack", ["mtp", "bgp", "bgp-bfd"])
def test_flap_storm_blackholes_crossing_traffic(stack):
    """The flap's dead-timer window must show up as measured loss —
    the metric the Slow-to-Accept ablation is about."""
    metrics = run_scenario(get_scenario("flap-storm"), two_pod_params(),
                           stack, seed=0)
    assert metrics.sent == 2000
    assert metrics.lost > 0
    assert metrics.blackhole_us > 0
    assert metrics.detection_us is not None and metrics.detection_us > 0


def test_gray_uplink_degrades_goodput_without_hard_failure():
    """The gray scenario loses traffic while every interface stays
    admin-up — degradation the binary failure model cannot express."""
    metrics, world = run_scenario(get_scenario("gray-uplink"),
                                  two_pod_params(), "mtp", seed=0,
                                  return_world=True)
    assert metrics.sent == 2500
    assert metrics.lost > 0
    assert 0.7 < metrics.goodput < 1.0
    assert all(iface.admin_up for node in world.nodes.values()
               for iface in node.interfaces.values())
    # bad-FCS drops are visible at the receiving MAC
    corrupt = sum(iface.counters.rx_dropped_corrupt
                  for node in world.nodes.values()
                  for iface in node.interfaces.values())
    assert corrupt > 0


def test_lossy_spine_false_flags_quick_to_detect_but_not_bfd():
    """The detection-aggressiveness tradeoff, quantified: at 10% loss
    MR-MTP's one-missed-hello dead timer false-flags the healthy
    neighbour (and pays route churn for it), while BFD's detect-mult=3
    rides the loss out."""
    mtp = run_scenario(get_scenario("lossy-spine"), two_pod_params(),
                       "mtp", seed=0)
    assert mtp.false_positives > 0
    assert mtp.flaps > 0
    assert mtp.route_churn > 0
    bfd = run_scenario(get_scenario("lossy-spine"), two_pod_params(),
                       "bgp-bfd", seed=0)
    assert bfd.false_positives == 0
    assert bfd.flaps == 0


@pytest.mark.parametrize("stack", ["mtp", "bgp-bfd"])
def test_incast_storm_reports_flow_level_blackhole(stack):
    """The loaded scenarios carry a workload report: the TC1-style
    failure inside incast-storm must surface as a flow-level blackhole
    window while byte conservation holds."""
    metrics = run_scenario(get_scenario("incast-storm"), two_pod_params(),
                           stack, seed=0)
    wl = metrics.workload
    assert wl is not None
    assert wl["flows"] == 600
    assert wl["offered_bytes"] > 0
    assert wl["delivered_bytes"] > 0
    assert wl["max_conservation_error"] < 1e-6
    assert wl["max_blackhole_us"] > 0


@pytest.mark.parametrize("stack", ["mtp", "bgp-bfd"])
def test_hotspot_drain_survives_with_conservation(stack):
    """Skewed load on a draining fabric: flows may reroute or blackhole
    while the agg is down, but the byte ledger must still balance."""
    metrics = run_scenario(get_scenario("hotspot-drain"), two_pod_params(),
                           stack, seed=0)
    wl = metrics.workload
    assert wl is not None
    assert wl["offered_bytes"] > 0
    assert wl["max_conservation_error"] < 1e-6
    # goodput is positive: the drain never partitions the fabric
    assert wl["goodput_bps"] > 0


def test_drain_crash_and_restart_hit_the_same_agg():
    """`any-agg` memoization: the drained aggregation must come back,
    leaving the fabric fully converged with zero down interfaces."""
    metrics, world = run_scenario(get_scenario("drain"), two_pod_params(),
                                  "mtp", seed=0, return_world=True)
    downs = [iface for node in world.nodes.values()
             for iface in node.interfaces.values() if not iface.admin_up]
    assert downs == []
    assert metrics.blast_radius > 0
