"""The canonical scenario library runs to completion on every
registered stack — the library-wide acceptance matrix."""

from __future__ import annotations

import pytest

from repro.scenario import (
    CANONICAL,
    ScenarioError,
    canonical_scenarios,
    get_scenario,
    run_scenario,
)
from repro.stacks import available_stacks
from repro.topology.clos import two_pod_params


def test_library_names_and_lookup():
    names = list(canonical_scenarios())
    assert names == ["tc1", "tc2", "tc3", "tc4", "flap-storm",
                     "double-cut", "drain", "rolling-restart"]
    assert get_scenario("flap-storm").name == "flap-storm"
    with pytest.raises(ScenarioError, match="unknown scenario"):
        get_scenario("tc9")


@pytest.mark.parametrize("stack", sorted(available_stacks()))
@pytest.mark.parametrize("scenario", CANONICAL,
                         ids=[s.name for s in CANONICAL])
def test_every_scenario_completes_on_every_stack(scenario, stack):
    metrics = run_scenario(scenario, two_pod_params(), stack, seed=0)
    assert metrics.scenario == scenario.name
    assert metrics.stack == stack
    assert metrics.convergence_us >= 0
    assert metrics.settle_us >= 0
    assert metrics.received <= metrics.sent
    assert metrics.lost == metrics.sent - metrics.received
    if scenario.name == "rolling-restart":
        assert [c.label for c in metrics.checkpoints] == ["wave-1",
                                                          "wave-2"]
        # the second wave happens after the first: counters only grow
        assert metrics.checkpoints[1].update_count >= \
            metrics.checkpoints[0].update_count
        assert metrics.checkpoints[1].time_us > \
            metrics.checkpoints[0].time_us
    else:
        assert metrics.checkpoints == []


@pytest.mark.parametrize("stack", ["mtp", "bgp", "bgp-bfd"])
def test_flap_storm_blackholes_crossing_traffic(stack):
    """The flap's dead-timer window must show up as measured loss —
    the metric the Slow-to-Accept ablation is about."""
    metrics = run_scenario(get_scenario("flap-storm"), two_pod_params(),
                           stack, seed=0)
    assert metrics.sent == 2000
    assert metrics.lost > 0
    assert metrics.blackhole_us > 0
    assert metrics.detection_us is not None and metrics.detection_us > 0


def test_drain_crash_and_restart_hit_the_same_agg():
    """`any-agg` memoization: the drained aggregation must come back,
    leaving the fabric fully converged with zero down interfaces."""
    metrics, world = run_scenario(get_scenario("drain"), two_pod_params(),
                                  "mtp", seed=0, return_world=True)
    downs = [iface for node in world.nodes.values()
             for iface in node.interfaces.values() if not iface.admin_up]
    assert downs == []
    assert metrics.blast_radius > 0
