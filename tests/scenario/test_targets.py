"""Symbolic target resolution: grammar coverage and deterministic
seeded expansion of the ``any-*`` / ``[any]`` choices."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.harness.failures import UnknownTargetError
from repro.scenario.targets import TargetResolver
from repro.topology.clos import (
    build_folded_clos,
    four_pod_params,
    two_pod_params,
)


@pytest.fixture
def resolver():
    return TargetResolver(build_folded_clos(four_pod_params(), seed=0))


# ----------------------------------------------------------------------
# grammar
# ----------------------------------------------------------------------
def test_indexed_node_targets(resolver):
    topo = resolver.topo
    assert resolver.node("tor[0]") == topo.all_tors()[0]
    assert resolver.node("agg[3]") == topo.all_aggs()[3]
    assert resolver.node("top[1]") == topo.all_tops()[1]
    # two-index form: pod-relative (plane-relative for tops)
    assert resolver.node("agg[1][0]") == topo.aggs[0][1][0]
    assert resolver.node("tor[0][1]") == topo.tors[0][0][1]


def test_literal_names_pass_through(resolver):
    name = resolver.topo.all_tors()[0]
    assert resolver.node(name) == name


def test_out_of_range_and_garbage_rejected(resolver):
    with pytest.raises(UnknownTargetError, match="out of range"):
        resolver.node("tor[999]")
    with pytest.raises(UnknownTargetError, match="cannot resolve node"):
        resolver.node("leaf[0]")
    with pytest.raises(UnknownTargetError, match="cannot resolve node"):
        resolver.node("tor[0")


def test_case_targets_match_failure_cases(resolver):
    cases = resolver.topo.failure_cases()
    for name, case in cases.items():
        assert resolver.interface(f"case:{name}") == (case.node,
                                                      case.interface)
    with pytest.raises(UnknownTargetError, match="unknown failure case"):
        resolver.interface("case:TC99")


def test_uplink_downlink_indexing(resolver):
    tor = resolver.topo.all_tors()[0]
    node_name, iface = resolver.interface("tor[0].uplink[1]")
    assert node_name == tor
    peer = resolver.topo.node(tor).interfaces[iface].peer()
    assert peer.node.tier > resolver.topo.node(tor).tier
    # downlinks of an agg face the ToR tier
    agg_name, down = resolver.interface("agg[0].downlink[0]")
    down_peer = resolver.topo.node(agg_name).interfaces[down].peer()
    assert down_peer.node.tier < resolver.topo.node(agg_name).tier
    with pytest.raises(UnknownTargetError, match="indices"):
        resolver.interface("tor[0].uplink[99]")


def test_named_iface_target(resolver):
    tor = resolver.topo.all_tors()[0]
    iface = next(iter(resolver.topo.node(tor).interfaces))
    assert resolver.interface(f"{tor}.iface[{iface}]") == (tor, iface)
    with pytest.raises(UnknownTargetError, match="no interface"):
        resolver.interface(f"{tor}.iface[eth999]")


def test_link_targets(resolver):
    a, b = resolver.link("tor[0]--agg[0]")
    assert resolver.topo.world.find_link(a, b) is not None
    # interface form resolves to the link behind the port
    a2, b2 = resolver.link("tor[0].uplink[0]")
    assert resolver.topo.world.find_link(a2, b2) is not None
    with pytest.raises(UnknownTargetError, match="no link"):
        resolver.link("tor[0]--tor[1]")


def test_server_endpoints(resolver):
    host = resolver.endpoint("server:tor[0]")
    assert host == resolver.topo.servers[resolver.topo.all_tors()[0]][0]
    assert resolver.endpoint(host) == host
    with pytest.raises(UnknownTargetError, match="cannot resolve endpoint"):
        resolver.endpoint("tor[0]")  # a router is not a traffic endpoint


def test_serverless_fabric_rejects_server_endpoint():
    topo = build_folded_clos(two_pod_params(servers_per_rack=0), seed=0)
    with pytest.raises(UnknownTargetError, match="no servers"):
        TargetResolver(topo).endpoint("server:tor[0]")


# ----------------------------------------------------------------------
# deterministic random expansion
# ----------------------------------------------------------------------
def test_any_choices_are_memoized_per_expression(resolver):
    first = resolver.node("any-agg")
    assert resolver.node("any-agg") == first  # crash + restart agree
    assert resolver.interface("agg[0].uplink[any]") == \
        resolver.interface("agg[0].uplink[any]")


def test_any_spine_is_a_top(resolver):
    assert resolver.node("any-spine") in resolver.topo.all_tops()


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_same_seed_expands_identically(seed):
    """The determinism contract: two fresh fabrics with the same seed
    resolve every symbolic expression to the same concrete targets."""
    expressions = ("any-agg", "any-tor", "any-spine", "any-router",
                   "agg[0].uplink[any]")
    expansions = []
    for _ in range(2):
        resolver = TargetResolver(
            build_folded_clos(four_pod_params(), seed=seed))
        expansions.append([
            resolver.node("any-agg"), resolver.node("any-tor"),
            resolver.node("any-spine"), resolver.node("any-router"),
            resolver.interface("agg[0].uplink[any]"),
        ])
    assert expansions[0] == expansions[1]
    assert len(expansions[0]) == len(expressions)


def test_resolution_order_matters_not_topology_build():
    """Resolver draws come from a dedicated named RNG stream, so two
    runs that resolve the same expressions in the same order agree even
    if other parts of the world consumed their own streams in between."""
    topo_a = build_folded_clos(four_pod_params(), seed=7)
    topo_b = build_folded_clos(four_pod_params(), seed=7)
    topo_b.world.rng.stream("unrelated-noise").uniform(0, 100)
    r_a, r_b = TargetResolver(topo_a), TargetResolver(topo_b)
    assert r_a.node("any-agg") == r_b.node("any-agg")
    assert r_a.interface("tor[1].uplink[any]") == \
        r_b.interface("tor[1].uplink[any]")
