"""The PR's acceptance criterion, as a regression test: on the
``rolling-restart`` scenario under the canonical permutation workload,
graceful restart strictly beats cold boot — smaller blackhole window,
higher goodput — for both the MR-MTP and BGP families, and the
invariant monitor never sees a forwarding loop."""

from __future__ import annotations

import pytest

from repro.scenario import get_scenario, run_scenario
from repro.topology.clos import two_pod_params

FAMILIES = {
    "mtp": ("mtp", "mtp-gr"),
    "bgp": ("bgp-bfd", "bgp-gr"),
}

_runs: dict[str, object] = {}


def rolling_restart(stack):
    if stack not in _runs:
        _runs[stack] = run_scenario(get_scenario("rolling-restart"),
                                    two_pod_params(), stack, seed=0)
    return _runs[stack]


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_graceful_strictly_beats_cold_boot(family):
    cold_stack, gr_stack = FAMILIES[family]
    cold = rolling_restart(cold_stack)
    graceful = rolling_restart(gr_stack)
    cold_wl, gr_wl = cold.workload, graceful.workload

    # a pod-batched cold boot wipes tables nobody can route around:
    # the blackhole window is real, and graceful restart closes it
    assert cold_wl["max_blackhole_us"] > 0
    assert gr_wl["max_blackhole_us"] < cold_wl["max_blackhole_us"]
    assert gr_wl["goodput_bps"] > cold_wl["goodput_bps"]
    # the monitor agrees with the flow-level view
    assert cold.fib_blackhole_us > graceful.fib_blackhole_us


@pytest.mark.parametrize("stack", sorted(sum(FAMILIES.values(), ())))
def test_no_stack_ever_loops_under_rolling_restart(stack):
    metrics = rolling_restart(stack)
    assert metrics.fib_loops == 0
    assert metrics.fib_loop_us == 0


@pytest.mark.parametrize("stack", ["mtp-gr", "bgp-gr"])
def test_graceful_restart_is_hitless(stack):
    """The headline property: with GR, the crash window is shorter than
    every detection timer and the restart refreshes in place, so the
    fabric never drops a byte it could have delivered."""
    metrics = rolling_restart(stack)
    assert metrics.workload["max_blackhole_us"] == 0
    assert metrics.fib_blackholes == 0
