"""Property: crash/restart schedules never lose bytes from the ledger.

Hypothesis draws a random schedule of agent crashes and restarts (any
router, cold or graceful, overlapping or redundant — the injector's
validated no-ops make every schedule legal) and runs the fluid
permutation workload over it on converged clos, VL2 and DCell fabrics.
Whatever the schedule does to forwarding, conservation must hold:
``offered == delivered + dropped + blackholed`` in every epoch."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.harness.experiments import build_and_converge
from repro.harness.failures import FailureInjector
from repro.sim.units import MILLISECOND, SECOND
from repro.topology.clos import two_pod_params
from repro.workload.engine import FluidWorkload
from repro.workload.spec import WorkloadSpec

#: family -> (params, stack): every restart mode crosses every family
#: (graceful MR-MTP on clos, graceful BGP on VL2, cold hold-timer BGP
#: on DCell).
FAMILIES = {
    "clos": (two_pod_params(), "mtp-gr"),
    "vl2": ("vl2", "bgp-gr"),
    "dcell": ("dcell", "bgp"),
}

DURATION_MS = 120

_fabrics: dict[str, tuple] = {}


def fabric(name):
    if name not in _fabrics:
        params, stack = FAMILIES[name]
        _fabrics[name] = build_and_converge(params, stack, seed=0)
    return _fabrics[name]


#: one schedule entry: victim index, crash time, outage length, mode
EVENTS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10**6),       # node pick
        st.integers(min_value=0, max_value=DURATION_MS // 2),  # crash ms
        st.integers(min_value=1, max_value=40),          # outage ms
        st.sampled_from([None, False, True]),            # cold
    ),
    min_size=1, max_size=3,
)

PROP_SETTINGS = settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.data_too_large],
)


@pytest.mark.parametrize("family", sorted(FAMILIES))
@PROP_SETTINGS
@given(events=EVENTS, flows=st.integers(min_value=30, max_value=120))
def test_restart_schedules_preserve_byte_conservation(family, events,
                                                      flows):
    world, topo, deployment = fabric(family)
    agents = getattr(deployment, "mtp_nodes", None) \
        or deployment.speakers
    routers = sorted(agents)
    injector = FailureInjector(world, deployment)
    base = world.sim.now
    for pick, crash_ms, outage_ms, cold in events:
        victim = routers[pick % len(routers)]
        injector.crash_agent(victim, at=base + crash_ms * MILLISECOND)
        injector.restart_agent(
            victim, at=base + (crash_ms + outage_ms) * MILLISECOND,
            cold=cold)

    spec = WorkloadSpec(name="restart-prop", matrix="permutation",
                        flows=flows, duration_ms=DURATION_MS, epoch_ms=10)
    engine = FluidWorkload(spec, topo, deployment)
    engine.start()
    world.run_for(DURATION_MS * MILLISECOND)
    report = engine.finish()

    assert report.max_conservation_error < 1e-6
    assert report.offered_bytes == pytest.approx(
        report.delivered_bytes + report.dropped_bytes
        + report.blackholed_bytes, abs=3)
    for start_us, end_us, offered, delivered, dropped, blackholed \
            in report.epoch_records:
        assert end_us >= start_us
        assert min(offered, delivered, dropped, blackholed) >= 0
        assert offered == pytest.approx(
            delivered + dropped + blackholed, abs=3)

    # hand the shared fabric back healthy for the next example: every
    # schedule restarts its victims, so a settle window reconverges
    world.run_for(3 * SECOND)
