"""The invariant monitor against the golden baselines: every TC1-TC4
run of every baseline stack must show zero forwarding loops, and
attaching the monitor must not move the golden metrics by a byte (the
monitor is an observer, not a participant)."""

from __future__ import annotations

import pytest

from repro.harness.experiments import detection_bound_us
from repro.scenario import get_scenario, run_scenario
from repro.topology.clos import two_pod_params

from tests.harness.test_golden_metrics import GOLDEN


@pytest.mark.parametrize("stack,case", sorted(GOLDEN))
def test_baseline_goldens_never_loop(stack, case):
    expected_conv, expected_bytes, expected_updates, _ = GOLDEN[(stack, case)]
    metrics = run_scenario(get_scenario(case.lower()), two_pod_params(),
                           stack, seed=0, invariants=True)
    assert metrics.fib_loops == 0, (
        f"{stack}/{case}: the monitor saw a forwarding loop in a "
        f"baseline golden scenario")
    # observing must not perturb: the golden numbers hold with the
    # monitor attached
    assert metrics.convergence_us == expected_conv
    assert metrics.control_bytes == expected_bytes
    assert metrics.update_count == expected_updates


def test_transient_blackhole_is_timed_not_boolean():
    """TC1 on plain mtp: the dead-timer window where the far leaf still
    sprays toward the failed uplink is a real (bounded) blackhole
    episode, and it closes once convergence completes."""
    metrics = run_scenario(get_scenario("tc1"), two_pod_params(), "mtp",
                           seed=0, invariants=True)
    assert metrics.fib_blackholes > 0
    # the window is the far side's detection problem: it lasts exactly
    # as long as the dead timer lets the stale spray continue
    bound = detection_bound_us("mtp")
    assert 0 < metrics.fib_blackhole_us <= bound + 10_000
