"""Serialization contract for the monitor counters: the ``fib_*``
fields round-trip through the cache payload, appear only when nonzero
(anomaly-free payloads stay byte-identical with the pre-monitor era),
and old payloads without them still decode."""

from __future__ import annotations

from repro.scenario.compiler import ScenarioMetrics
from repro.scenario.runner import (
    ScenarioOutcome,
    decode_scenario_outcome,
    encode_scenario_outcome,
)


def metrics(**overrides) -> ScenarioMetrics:
    base = dict(scenario="tc1", stack="mtp", seed=0, settle_us=100,
                convergence_us=200, detection_us=50, control_bytes=10,
                update_count=2, blast_routers=["S-1-1"])
    base.update(overrides)
    return ScenarioMetrics(**base)


def test_zero_counters_are_omitted_from_the_payload():
    payload = encode_scenario_outcome(
        ScenarioOutcome(metrics=metrics(), digest="d" * 16))
    assert not any(key.startswith("fib_") for key in payload)


def test_nonzero_counters_roundtrip():
    before = metrics(fib_loops=1, fib_loop_us=250, fib_blackholes=2,
                     fib_blackhole_us=9000)
    payload = encode_scenario_outcome(
        ScenarioOutcome(metrics=before, digest="d" * 16))
    assert payload["fib_loops"] == 1
    assert payload["fib_blackhole_us"] == 9000
    after = decode_scenario_outcome(payload).metrics
    assert after == before


def test_pre_monitor_payloads_still_decode():
    payload = encode_scenario_outcome(
        ScenarioOutcome(metrics=metrics(), digest="d" * 16))
    for key in list(payload):
        assert not key.startswith("fib_")
    decoded = decode_scenario_outcome(payload).metrics
    assert decoded.fib_loops == 0
    assert decoded.fib_blackhole_us == 0
