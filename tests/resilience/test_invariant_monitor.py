"""InvariantMonitor unit coverage: crafted loops and blackholes on a
real converged fabric (via a shimmed ``fluid_candidates``), episode
stitching across checks, finalize semantics, and the silence guarantee
(no trace records on a clean scan)."""

from __future__ import annotations

import pytest

from repro.harness.experiments import build_and_converge
from repro.resilience.invariants import BLACKHOLE, LOOP, InvariantMonitor
from repro.sim.units import MILLISECOND
from repro.topology.clos import two_pod_params


@pytest.fixture
def fabric():
    return build_and_converge(two_pod_params(), "mtp", seed=0)


def port_toward(topo, node: str, peer: str) -> str:
    for name, iface in topo.node(node).interfaces.items():
        p = iface.peer()
        if p is not None and p.node.name == peer:
            return name
    raise AssertionError(f"no port {node} -> {peer}")


def shim_candidates(deployment, dst: str, overrides: dict):
    """Replace candidate sets for (node, dst) pairs; everything else
    falls through to the deployment's real forwarding state."""
    original = deployment.fluid_candidates

    def patched(node, dst_tor, ingress):
        if dst_tor == dst and node in overrides:
            return (0, False, tuple(overrides[node]))
        return original(node, dst_tor, ingress)

    deployment.fluid_candidates = patched
    return original


# ----------------------------------------------------------------------
# clean fabric: no anomalies, no side effects
# ----------------------------------------------------------------------
def test_converged_fabric_scans_clean(fabric):
    world, topo, deployment = fabric
    monitor = InvariantMonitor(topo, deployment)
    records_before = len(world.trace.records)
    monitor.check()
    monitor.finalize()
    assert monitor.episodes == []
    assert monitor.loops == 0 and monitor.blackholes == 0
    assert monitor.checks == 1
    # the monitor is silent: a clean run must not perturb the digest
    assert len(world.trace.records) == records_before


# ----------------------------------------------------------------------
# crafted loop: leaf and spine forward to each other
# ----------------------------------------------------------------------
def test_two_node_cycle_is_reported_as_a_loop(fabric):
    world, topo, deployment = fabric
    up = port_toward(topo, "L-1-1", "S-1-1")
    down = port_toward(topo, "S-1-1", "L-1-1")
    original = shim_candidates(deployment, "L-2-1",
                               {"L-1-1": [up], "S-1-1": [down]})
    monitor = InvariantMonitor(topo, deployment)
    monitor.check()          # opens the loop episode at t=now
    start = world.sim.now
    world.run_for(2 * MILLISECOND)
    deployment.fluid_candidates = original
    monitor.check()          # the loop healed: episode closes here
    end = world.sim.now
    monitor.finalize()

    loops = [e for e in monitor.episodes if e.kind == LOOP]
    assert ("L-1-1", "L-2-1") in {(e.src_tor, e.dst_tor) for e in loops}
    assert all(e.dst_tor == "L-2-1" and not e.ongoing
               for e in monitor.episodes)
    worst = max(e.duration_us for e in loops)
    assert worst == end - start
    assert monitor.loop_us == worst
    # a sender caught in a cycle never reaches a drop state, so the
    # crafted cycle must not double-report as a blackhole for L-1-1
    assert (BLACKHOLE, "L-1-1", "L-2-1") not in {
        (e.kind, e.src_tor, e.dst_tor) for e in monitor.episodes}


# ----------------------------------------------------------------------
# crafted blackhole: a leaf with no candidates while a path exists
# ----------------------------------------------------------------------
def test_droppable_state_with_alive_path_is_a_blackhole(fabric):
    world, topo, deployment = fabric
    original = shim_candidates(deployment, "L-2-1", {"L-1-1": []})
    monitor = InvariantMonitor(topo, deployment)
    monitor.check()
    world.run_for(1 * MILLISECOND)
    monitor.finalize()       # never healed: closed as ongoing

    assert [(e.kind, e.src_tor, e.dst_tor, e.ongoing)
            for e in monitor.episodes] == [
        (BLACKHOLE, "L-1-1", "L-2-1", True)]
    assert monitor.blackhole_us == 1 * MILLISECOND
    deployment.fluid_candidates = original


def test_unreachable_destination_is_not_an_anomaly(fabric):
    """Dropping traffic the physics cannot deliver is correct: isolate
    the destination rack entirely and the monitor must stay quiet."""
    world, topo, deployment = fabric
    for iface in topo.node("L-2-1").interfaces.values():
        iface.set_admin(False)
    world.run_for(500 * MILLISECOND)   # let the fabric reroute
    monitor = InvariantMonitor(topo, deployment)
    monitor.check()
    monitor.finalize()
    assert not any(e.dst_tor == "L-2-1" and e.kind == BLACKHOLE
                   for e in monitor.episodes)


# ----------------------------------------------------------------------
# lifecycle edges
# ----------------------------------------------------------------------
def test_finalize_is_idempotent_and_freezes_state(fabric):
    world, topo, deployment = fabric
    original = shim_candidates(deployment, "L-2-1", {"L-1-1": []})
    monitor = InvariantMonitor(topo, deployment)
    monitor.check()
    monitor.finalize()
    episodes = list(monitor.episodes)
    monitor.finalize()       # idempotent
    monitor.check()          # post-finalize checks are ignored
    assert monitor.episodes == episodes
    assert monitor.checks == 1
    deployment.fluid_candidates = original


def test_episode_payload_roundtrip(fabric):
    _, topo, deployment = fabric
    original = shim_candidates(deployment, "L-2-1", {"L-1-1": []})
    monitor = InvariantMonitor(topo, deployment)
    monitor.check()
    monitor.finalize()
    (episode,) = monitor.episodes
    assert episode.to_payload() == [
        BLACKHOLE, "L-1-1", "L-2-1", episode.start_us, episode.end_us, 1]
    deployment.fluid_candidates = original
