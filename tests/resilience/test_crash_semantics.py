"""The split crash model of DESIGN §15: ``agent_crash`` kills protocol
state while the data plane forwards headless on the frozen FIB;
``node_crash`` is a power event that takes forwarding down with it and
cold-boots on restore.  Plus the injector's validated no-ops and the
single-record ``fail.node``/``restore.node`` tracing."""

from __future__ import annotations

import pytest

from repro.harness.experiments import build_and_converge
from repro.harness.failures import FailureInjector
from repro.sim.units import SECOND
from repro.topology.clos import two_pod_params

AGG = "S-1-1"


@pytest.fixture
def mtp_fabric():
    return build_and_converge(two_pod_params(), "mtp", seed=0)


def records(world, category, node=None):
    return [r for r in world.trace.records
            if r.category == category and (node is None or r.node == node)]


# ----------------------------------------------------------------------
# agent crash: headless forwarding on frozen state
# ----------------------------------------------------------------------
def test_agent_crash_freezes_fib_and_keeps_forwarding(mtp_fabric):
    world, topo, deployment = mtp_fabric
    agent = deployment.mtp_nodes[AGG]
    entries = agent.table.entries()
    assert entries, "converged agg must hold VID state"
    injector = FailureInjector(world, deployment)
    injector.crash_agent(AGG)
    assert agent.crashed
    # the VID table is untouched — the data plane forwards headless
    assert agent.table.entries() == entries
    # and every port stays admin-up: the crash is control-plane only
    assert all(i.admin_up for i in topo.node(AGG).interfaces.values())
    _, _, ports = deployment.fluid_candidates(AGG, "L-2-1", None)
    assert ports, "frozen FIB still yields egress candidates"


def test_cold_restart_wipes_protocol_and_forwarding_state(mtp_fabric):
    world, topo, deployment = mtp_fabric
    agent = deployment.mtp_nodes[AGG]
    injector = FailureInjector(world, deployment)
    injector.crash_agent(AGG)
    injector.restart_agent(AGG, cold=True)
    # cold boot: the table restarts empty and the trees rebuild from wire
    assert agent.table.entries() == []
    world.run_for(2 * SECOND)
    assert deployment.trees_complete()
    assert agent.table.entries()


def test_node_crash_downs_every_interface_and_agent_first(mtp_fabric):
    world, topo, deployment = mtp_fabric
    agent = deployment.mtp_nodes[AGG]
    injector = FailureInjector(world, deployment)
    injector.fail_node(AGG)
    assert agent.crashed
    assert all(not i.admin_up for i in topo.node(AGG).interfaces.values())
    # one fail.node record covers the outage, not N per-link episodes
    assert len(records(world, "fail.node", AGG)) == 1
    assert not records(world, "restore.node", AGG)

    injector.restore_node(AGG)
    assert all(i.admin_up for i in topo.node(AGG).interfaces.values())
    assert not agent.crashed            # cold-booted with the power
    assert agent.table.entries() == []  # a power-cycled device keeps nothing
    assert len(records(world, "restore.node", AGG)) == 1
    world.run_for(2 * SECOND)
    assert deployment.trees_complete()


# ----------------------------------------------------------------------
# validated no-ops: traced, state untouched
# ----------------------------------------------------------------------
def test_crashing_a_crashed_agent_is_a_traced_noop(mtp_fabric):
    world, _, deployment = mtp_fabric
    injector = FailureInjector(world, deployment)
    injector.crash_agent(AGG)
    before = list(injector.events)
    injector.crash_agent(AGG)
    assert injector.events == before
    assert [r.message for r in records(world, "fail.agent", AGG)] == [
        "crash", "crash no-op"]


def test_restarting_a_healthy_agent_is_a_traced_noop(mtp_fabric):
    world, _, deployment = mtp_fabric
    agent = deployment.mtp_nodes[AGG]
    entries = agent.table.entries()
    injector = FailureInjector(world, deployment)
    injector.restart_agent(AGG)
    assert not injector.events
    assert agent.table.entries() == entries
    assert [r.message for r in records(world, "fail.agent", AGG)] == [
        "restart no-op"]


def test_node_noops_trace_without_touching_ports(mtp_fabric):
    world, topo, deployment = mtp_fabric
    injector = FailureInjector(world, deployment)
    injector.restore_node(AGG)          # healthy node: restore is a no-op
    assert all(i.admin_up for i in topo.node(AGG).interfaces.values())
    assert [r.message for r in records(world, "restore.node", AGG)] == [
        "no-op"]
    injector.fail_node(AGG)
    injector.fail_node(AGG)             # already dark: second is a no-op
    assert [r.message for r in records(world, "fail.node", AGG)][-1] == "no-op"
    assert len([e for e in injector.events if e.interface != "agent"]) \
        == len(topo.node(AGG).interfaces)


def test_agent_ops_require_a_bound_deployment(mtp_fabric):
    world, _, _ = mtp_fabric
    injector = FailureInjector(world)
    with pytest.raises(ValueError, match="deployment"):
        injector.crash_agent(AGG)
    with pytest.raises(ValueError, match="deployment"):
        injector.restart_agent(AGG)


# ----------------------------------------------------------------------
# the same split holds for BGP: bgpd dies, the kernel FIB keeps routing
# ----------------------------------------------------------------------
def test_bgp_agent_crash_keeps_kernel_fib():
    world, _, deployment = build_and_converge(
        two_pod_params(), "bgp-bfd", seed=0)
    speaker = deployment.speakers[AGG]
    routes = len(deployment.stacks[AGG].table)
    assert routes
    injector = FailureInjector(world, deployment)
    injector.crash_agent(AGG)
    assert speaker.crashed
    assert len(deployment.stacks[AGG].table) == routes
    _, _, ports = deployment.fluid_candidates(AGG, "L-2-1", None)
    assert ports
