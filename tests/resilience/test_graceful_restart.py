"""Graceful restart per stack: MR-MTP's generation-hello detection,
warm carry-over and direct re-JOIN; BGP's RFC 4724 stale retention and
End-of-RIB flush; and the ``bgp-gr``/``mtp-gr`` registry variants that
switch the behavior on."""

from __future__ import annotations

import pytest

from repro.harness.experiments import build_and_converge
from repro.harness.failures import FailureInjector
from repro.sim.units import MILLISECOND, SECOND
from repro.stacks import get_stack, resolve_spec
from repro.topology.clos import two_pod_params

AGG = "S-1-1"


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,params", [
    ("bgp-gr", {"bfd": True, "graceful_restart": True}),
    ("mtp-gr", {"graceful_restart": True}),
])
def test_gr_variants_are_registered(name, params):
    spec = resolve_spec(name)
    assert dict(spec.params) == params
    get_stack(spec.name)  # resolvable to a buildable definition


@pytest.mark.parametrize("name", ["bgp-gr", "mtp-gr"])
def test_gr_deployments_carry_the_flag(name):
    _, _, deployment = build_and_converge(two_pod_params(), name, seed=0)
    assert deployment.graceful_restart


# ----------------------------------------------------------------------
# MR-MTP graceful restart
# ----------------------------------------------------------------------
def test_mtp_warm_restart_holds_stale_and_reconfirms():
    world, topo, deployment = build_and_converge(
        two_pod_params(), "mtp-gr", seed=0)
    agent = deployment.mtp_nodes[AGG]
    entries = agent.table.entries()
    gen = agent.restart_gen
    injector = FailureInjector(world, deployment)
    injector.crash_agent(AGG)
    injector.restart_agent(AGG)         # stack mode: graceful
    # the pre-crash tree survives the restart as stale-held state ...
    assert agent.restart_gen == gen + 1
    assert agent._gr_stale, "warm restart must hold the old tree stale"
    assert agent.table.entries() == entries
    # ... and direct re-JOINs confirm it without waiting out the
    # rebuild timer: well before a cold Slow-to-Accept cycle completes
    world.run_for(20 * MILLISECOND)
    assert not agent._gr_stale, "offers must confirm the stale tree"
    assert agent.table.entries() == entries
    assert deployment.trees_complete()


def test_mtp_generation_hello_reveals_peer_restart():
    """Peers cannot see a fast restart through timers alone — the
    bumped generation byte in the full hello is what tells them."""
    world, topo, deployment = build_and_converge(
        two_pod_params(), "mtp-gr", seed=0)
    agent = deployment.mtp_nodes[AGG]
    injector = FailureInjector(world, deployment)
    injector.crash_agent(AGG)
    injector.restart_agent(AGG)
    world.run_for(200 * MILLISECOND)
    helper_downs = [r for r in world.trace.records
                    if r.category == "mtp.neighbor"
                    and "peer-restart" in r.message]
    assert helper_downs, "helpers must notice the bumped generation"
    # helpers held the restarting peer's routes instead of flushing
    held = [r for r in world.trace.records if "held stale" in r.message]
    assert held


def test_mtp_restart_mode_follows_the_stack():
    """`restart_agent(cold=None)` cold-boots on plain mtp and restarts
    gracefully on mtp-gr — same scenario text, different stack."""
    for stack, graceful in (("mtp", False), ("mtp-gr", True)):
        world, _, deployment = build_and_converge(
            two_pod_params(), stack, seed=0)
        agent = deployment.mtp_nodes[AGG]
        injector = FailureInjector(world, deployment)
        injector.crash_agent(AGG)
        injector.restart_agent(AGG)     # cold=None: stack decides
        if graceful:
            assert agent.table.entries()
        else:
            assert agent.table.entries() == []


def test_mtp_unconfirmed_stale_state_is_pruned():
    """If the rebuild window closes with part of the old tree
    unconfirmed, the leftovers are withdrawn, not kept forever."""
    world, topo, deployment = build_and_converge(
        two_pod_params(), "mtp-gr", seed=0)
    agent = deployment.mtp_nodes[AGG]
    injector = FailureInjector(world, deployment)
    injector.crash_agent(AGG)
    # while the agent is dark, a neighbor leaf goes away for good: its
    # part of the tree can never be re-confirmed
    injector.fail_node("L-1-1")
    injector.restart_agent(AGG)
    world.run_for(2 * SECOND)
    assert not agent._gr_stale
    ports_to_l11 = {name for name, iface in topo.node(AGG).interfaces.items()
                    if (p := iface.peer()) is not None
                    and p.node.name == "L-1-1"}
    assert not any(port in ports_to_l11
                   for port, _ in agent.table.entries())


# ----------------------------------------------------------------------
# BGP graceful restart
# ----------------------------------------------------------------------
def test_bgp_warm_restart_keeps_fib_and_resyncs():
    world, topo, deployment = build_and_converge(
        two_pod_params(), "bgp-gr", seed=0)
    speaker = deployment.speakers[AGG]
    table = deployment.stacks[AGG].table
    routes = len(table)
    assert routes
    injector = FailureInjector(world, deployment)
    injector.crash_agent(AGG)
    injector.restart_agent(AGG)
    # the forwarding plane never empties: RFC 4724 forwarding-state bit
    assert len(table) == routes
    world.run_for(5 * SECOND)
    assert len(table) == routes
    assert speaker.all_established()
    assert deployment.ready()
    # End-of-RIB swept the stale marks: nothing left under a timer
    assert not any(peer.stale_timer is not None and peer.stale_timer.armed
                   for peer in speaker.peers.values()
                   if hasattr(peer.stale_timer, "armed"))


def test_bgp_cold_restart_flushes_fib():
    world, _, deployment = build_and_converge(
        two_pod_params(), "bgp-bfd", seed=0)
    table = deployment.stacks[AGG].table
    routes = len(table)
    assert routes
    injector = FailureInjector(world, deployment)
    injector.crash_agent(AGG)
    injector.restart_agent(AGG)         # stack mode: cold
    # the flush drops every BGP route; only connected routes remain
    assert len(table) < routes
    assert not any(r.proto == "bgp" for r in table.routes())
    world.run_for(5 * SECOND)
    assert deployment.ready()
    assert len(table) == routes


def test_bgp_helper_holds_stale_for_a_restarting_peer():
    world, _, deployment = build_and_converge(
        two_pod_params(), "bgp-gr", seed=0)
    injector = FailureInjector(world, deployment)
    injector.crash_agent(AGG)
    injector.restart_agent(AGG)
    world.run_for(5 * SECOND)
    held = [r for r in world.trace.records if "held stale" in r.message]
    assert held, "helpers must retain the restarting peer's paths"
    # resync refreshed every held path before End-of-RIB, so nothing
    # was swept and no helper gave up via the restart timer
    for speaker in deployment.speakers.values():
        for peer in speaker.peers.values():
            assert not speaker.rib_in.stale_prefixes(peer.cfg.peer_ip)
    assert not any("restart-timer" in r.message
                   for r in world.trace.records)
