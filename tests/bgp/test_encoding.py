"""BGP wire encoding: RFC 4271 byte layouts and round-trips."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.bgp.encoding import decode_message, encode_message
from repro.bgp.messages import (
    BgpKeepalive,
    BgpNotification,
    BgpOpen,
    BgpUpdate,
    PathAttributes,
)
from repro.stack.addresses import Ipv4Address, Ipv4Network


def ip(text):
    return Ipv4Address.parse(text)


def net(text):
    return Ipv4Network.parse(text)


def test_keepalive_is_19_bytes():
    """The header-only message: 16 marker + 2 length + 1 type."""
    blob = encode_message(BgpKeepalive())
    assert len(blob) == 19
    assert blob[:16] == b"\xff" * 16
    assert blob[18] == 4


def test_keepalive_roundtrip():
    assert isinstance(decode_message(encode_message(BgpKeepalive())), BgpKeepalive)


def test_open_is_45_bytes_with_frr_capabilities():
    msg = BgpOpen(asn=64512, hold_time_s=3, router_id=ip("10.0.0.1"))
    blob = encode_message(msg)
    assert len(blob) == 45
    decoded = decode_message(blob)
    assert decoded == msg


def test_open_with_4_octet_asn_uses_as_trans():
    msg = BgpOpen(asn=4_200_000_000, hold_time_s=9, router_id=ip("1.2.3.4"))
    blob = encode_message(msg)
    # 2-octet field carries AS_TRANS, capability carries the real ASN
    decoded = decode_message(blob)
    assert decoded.asn == 4_200_000_000


def test_withdraw_only_update_size():
    """19 header + 2 withdrawn-len + 4 (a /24) + 2 attr-len = 27."""
    msg = BgpUpdate(withdrawn=(net("192.168.11.0/24"),))
    assert len(encode_message(msg)) == 27


def test_advertisement_update_size_grows_with_as_path():
    attrs1 = PathAttributes(as_path=(64512,), next_hop=ip("172.16.0.1"))
    attrs2 = PathAttributes(as_path=(64512, 64513), next_hop=ip("172.16.0.1"))
    m1 = BgpUpdate(nlri=(net("192.168.11.0/24"),), attributes=attrs1)
    m2 = BgpUpdate(nlri=(net("192.168.11.0/24"),), attributes=attrs2)
    assert len(encode_message(m2)) - len(encode_message(m1)) == 4  # one 4-octet ASN


def test_update_roundtrip_mixed():
    attrs = PathAttributes(as_path=(65001, 64512, 65002),
                           next_hop=ip("172.16.0.9"))
    msg = BgpUpdate(
        withdrawn=(net("192.168.1.0/24"), net("10.0.0.0/8")),
        nlri=(net("192.168.2.0/24"), net("192.168.3.0/24")),
        attributes=attrs,
    )
    decoded = decode_message(encode_message(msg))
    assert decoded == msg


def test_update_roundtrip_empty_as_path():
    """Locally originated routes have an empty AS_PATH on iBGP-like hops;
    the attribute must encode and decode as empty."""
    attrs = PathAttributes(as_path=(), next_hop=ip("172.16.0.9"))
    msg = BgpUpdate(nlri=(net("192.168.2.0/24"),), attributes=attrs)
    decoded = decode_message(encode_message(msg))
    assert decoded.attributes.as_path == ()


def test_notification_roundtrip():
    msg = BgpNotification(error_code=4, error_subcode=0)
    blob = encode_message(msg)
    assert len(blob) == 21
    assert decode_message(blob) == msg


def test_update_content_validation():
    # a fully empty UPDATE is legal: the RFC 4724 End-of-RIB marker
    assert BgpUpdate().is_end_of_rib
    assert not BgpUpdate(withdrawn=(net("10.0.0.0/8"),)).is_end_of_rib
    with pytest.raises(ValueError):
        BgpUpdate(nlri=(net("10.0.0.0/8"),))  # NLRI without attributes
    with pytest.raises(ValueError):  # attributes without NLRI
        BgpUpdate(attributes=PathAttributes(as_path=(65001,),
                                            next_hop=ip("10.0.0.1")))


def test_decode_rejects_bad_marker():
    blob = bytearray(encode_message(BgpKeepalive()))
    blob[0] = 0
    with pytest.raises(ValueError):
        decode_message(bytes(blob))


def test_decode_rejects_bad_length():
    blob = encode_message(BgpKeepalive()) + b"x"
    with pytest.raises(ValueError):
        decode_message(blob)


def test_wire_size_property_matches_encoding():
    msg = BgpUpdate(withdrawn=(net("192.168.11.0/24"),))
    assert msg.wire_size == len(encode_message(msg))


@st.composite
def prefixes(draw):
    plen = draw(st.integers(min_value=8, max_value=32))
    value = draw(st.integers(min_value=0, max_value=(1 << 32) - 1))
    return Ipv4Network.of(Ipv4Address(value), plen)


@given(
    withdrawn=st.lists(prefixes(), max_size=5, unique=True),
    nlri=st.lists(prefixes(), min_size=1, max_size=5, unique=True),
    as_path=st.lists(st.integers(min_value=1, max_value=2**32 - 1), max_size=6),
    next_hop=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_update_roundtrip_property(withdrawn, nlri, as_path, next_hop):
    attrs = PathAttributes(as_path=tuple(as_path), next_hop=Ipv4Address(next_hop))
    msg = BgpUpdate(withdrawn=tuple(withdrawn), nlri=tuple(nlri), attributes=attrs)
    assert decode_message(encode_message(msg)) == msg


@given(
    asn=st.integers(min_value=1, max_value=2**32 - 1),
    hold=st.integers(min_value=0, max_value=65535),
    rid=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_open_roundtrip_property(asn, hold, rid):
    msg = BgpOpen(asn=asn, hold_time_s=hold, router_id=Ipv4Address(rid))
    assert decode_message(encode_message(msg)) == msg
