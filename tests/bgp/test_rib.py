"""RIB structures and the decision process."""

from __future__ import annotations

from repro.bgp.messages import PathAttributes
from repro.bgp.rib import AdjRibIn, LocRib, RibEntry
from repro.stack.addresses import Ipv4Address, Ipv4Network


def ip(text):
    return Ipv4Address.parse(text)


def net(text):
    return Ipv4Network.parse(text)


def attrs(*path, nh="172.16.0.1"):
    return PathAttributes(as_path=tuple(path), next_hop=ip(nh))


def entry(prefix, path, peer):
    return RibEntry(net(prefix), attrs(*path), ip(peer) if peer else None)


class TestAdjRibIn:
    def test_set_remove(self):
        rib = AdjRibIn()
        rib.set(ip("1.1.1.1"), net("10.0.0.0/8"), attrs(1, 2))
        assert len(rib.candidates(net("10.0.0.0/8"))) == 1
        assert rib.remove(ip("1.1.1.1"), net("10.0.0.0/8"))
        assert not rib.remove(ip("1.1.1.1"), net("10.0.0.0/8"))
        assert rib.candidates(net("10.0.0.0/8")) == []

    def test_remove_peer_returns_prefixes(self):
        rib = AdjRibIn()
        rib.set(ip("1.1.1.1"), net("10.0.0.0/8"), attrs(1))
        rib.set(ip("1.1.1.1"), net("11.0.0.0/8"), attrs(1))
        rib.set(ip("2.2.2.2"), net("10.0.0.0/8"), attrs(2))
        gone = rib.remove_peer(ip("1.1.1.1"))
        assert sorted(str(p) for p in gone) == ["10.0.0.0/8", "11.0.0.0/8"]
        assert rib.entry_count() == 1

    def test_candidates_across_peers(self):
        rib = AdjRibIn()
        rib.set(ip("1.1.1.1"), net("10.0.0.0/8"), attrs(1))
        rib.set(ip("2.2.2.2"), net("10.0.0.0/8"), attrs(2, 3))
        cands = rib.candidates(net("10.0.0.0/8"))
        assert {c.path_len for c in cands} == {1, 2}


class TestDecision:
    def test_shortest_as_path_wins(self):
        rib = LocRib(multipath=True)
        chosen = rib.decide(net("10.0.0.0/8"), [
            entry("10.0.0.0/8", (1, 2, 3), "2.2.2.2"),
            entry("10.0.0.0/8", (1, 2), "1.1.1.1"),
        ])
        assert len(chosen) == 1
        assert chosen[0].peer_ip == ip("1.1.1.1")

    def test_equal_length_paths_form_ecmp_set(self):
        rib = LocRib(multipath=True)
        chosen = rib.decide(net("10.0.0.0/8"), [
            entry("10.0.0.0/8", (1, 2), "2.2.2.2"),
            entry("10.0.0.0/8", (9, 8), "1.1.1.1"),
        ])
        assert len(chosen) == 2
        # deterministic ordering: lowest neighbor first
        assert chosen[0].peer_ip == ip("1.1.1.1")

    def test_multipath_disabled_keeps_single_best(self):
        rib = LocRib(multipath=False)
        chosen = rib.decide(net("10.0.0.0/8"), [
            entry("10.0.0.0/8", (1, 2), "2.2.2.2"),
            entry("10.0.0.0/8", (9, 8), "1.1.1.1"),
        ])
        assert len(chosen) == 1

    def test_local_route_beats_any_learned_route(self):
        rib = LocRib()
        chosen = rib.decide(net("10.0.0.0/8"), [
            entry("10.0.0.0/8", (1,), "2.2.2.2"),
            entry("10.0.0.0/8", (), None),  # locally originated
        ])
        assert len(chosen) == 1 and chosen[0].is_local

    def test_empty_candidates_clears_prefix(self):
        rib = LocRib()
        rib.decide(net("10.0.0.0/8"), [entry("10.0.0.0/8", (1,), "1.1.1.1")])
        assert rib.best(net("10.0.0.0/8")) is not None
        rib.decide(net("10.0.0.0/8"), [])
        assert rib.best(net("10.0.0.0/8")) is None
        assert len(rib) == 0

    def test_prefix_listing_sorted(self):
        rib = LocRib()
        rib.decide(net("11.0.0.0/8"), [entry("11.0.0.0/8", (1,), "1.1.1.1")])
        rib.decide(net("10.0.0.0/8"), [entry("10.0.0.0/8", (1,), "1.1.1.1")])
        assert [str(p) for p in rib.prefixes()] == ["10.0.0.0/8", "11.0.0.0/8"]


class TestPathAttributes:
    def test_prepend(self):
        a = attrs(2, 3)
        b = a.prepend(1, ip("9.9.9.9"))
        assert b.as_path == (1, 2, 3)
        assert b.next_hop == ip("9.9.9.9")
        assert a.as_path == (2, 3)  # immutable

    def test_contains_as(self):
        assert attrs(1, 2, 3).contains_as(2)
        assert not attrs(1, 2, 3).contains_as(4)
