"""BGP speaker behaviour on small hand-built topologies."""

from __future__ import annotations

import pytest

from repro.bgp.config import BgpConfig, BgpNeighborConfig, BgpTimers
from repro.bgp.speaker import BgpSpeaker, PeerState
from repro.iputil.stack import IpStack
from repro.iputil.tcp import TcpService
from repro.iputil.udp_service import UdpService
from repro.net.world import World
from repro.sim.units import MILLISECOND, SECOND
from repro.stack.addresses import Ipv4Address, Ipv4Network


def ip(text):
    return Ipv4Address.parse(text)


def net(text):
    return Ipv4Network.parse(text)


def make_router(world, name, tier, asn):
    node = world.add_node(name, tier=tier)
    return node, asn


def wire_pair(world, timers=None):
    """Two routers R1(AS 65001) -- R2(AS 65002), R1 originates 10.1.0.0/24."""
    timers = timers or BgpTimers()
    r1 = world.add_node("R1", tier=1)
    r2 = world.add_node("R2", tier=2)
    link = world.connect(r1, r2)
    link.end_a.assign_address(ip("172.16.0.0"), 31)
    link.end_b.assign_address(ip("172.16.0.1"), 31)
    speakers = {}
    for node, asn, peer_ip, peer_asn, networks in (
        (r1, 65001, "172.16.0.1", 65002, [net("10.1.0.0/24")]),
        (r2, 65002, "172.16.0.0", 65001, []),
    ):
        stack = IpStack(node)
        stack.install_connected_routes()
        tcp = TcpService(stack)
        UdpService(stack)
        config = BgpConfig(
            asn=asn, router_id=node.interfaces["eth1"].address,
            neighbors=[BgpNeighborConfig(ip(peer_ip), peer_asn, "eth1")],
            networks=networks, timers=timers,
        )
        speakers[node.name] = BgpSpeaker(node, config, stack, tcp)
    for s in speakers.values():
        s.start()
    return r1, r2, speakers


def test_session_establishes(world):
    r1, r2, speakers = wire_pair(world)
    world.run(until=5 * SECOND)
    assert speakers["R1"].all_established()
    assert speakers["R2"].all_established()


def test_route_advertised_and_installed(world):
    r1, r2, speakers = wire_pair(world)
    world.run(until=5 * SECOND)
    route = speakers["R2"].stack.table.lookup(ip("10.1.0.5"))
    assert route is not None and route.proto == "bgp"
    assert route.nexthops[0].via == ip("172.16.0.0")
    # and the loc-rib has the learned path with R1's ASN
    best = speakers["R2"].loc_rib.best(net("10.1.0.0/24"))
    assert best.attributes.as_path == (65001,)


def test_keepalives_flow_and_hold_timer_does_not_fire(world):
    r1, r2, speakers = wire_pair(world)
    world.run(until=15 * SECOND)
    assert speakers["R1"].all_established()
    kas = world.trace.count("bgp.keepalive.tx")
    assert kas >= 20  # ~1/s each way for >10 s


def test_hold_timer_tears_down_on_silent_peer(world):
    r1, r2, speakers = wire_pair(world)
    world.run(until=5 * SECOND)
    t0 = world.sim.now
    # silence R1 by downing its interface: R2 must hold-time out in ~3 s
    r1.interfaces["eth1"].set_admin(False)
    world.run(until=t0 + 10 * SECOND)
    peer = next(iter(speakers["R2"].peers.values()))
    assert peer.state is not PeerState.ESTABLISHED
    downs = [r for r in world.trace.select(category="bgp.session", node="R2",
                                           since=t0)
             if "down" in r.message]
    assert downs and downs[0].time - t0 <= 3 * SECOND + 200 * MILLISECOND
    # the learned route is withdrawn from the FIB
    assert speakers["R2"].stack.table.lookup(ip("10.1.0.5")) is None


def test_local_interface_down_is_instant_fallover(world):
    r1, r2, speakers = wire_pair(world)
    world.run(until=5 * SECOND)
    t0 = world.sim.now
    r2.interfaces["eth1"].set_admin(False)  # R2's own interface
    # no simulation time may pass for R2's session to drop
    peer = next(iter(speakers["R2"].peers.values()))
    assert peer.state is PeerState.IDLE
    assert speakers["R2"].stack.table.lookup(ip("10.1.0.5")) is None
    assert world.sim.now == t0


def test_session_reestablishes_after_recovery(world):
    r1, r2, speakers = wire_pair(world)
    world.run(until=5 * SECOND)
    r1.interfaces["eth1"].set_admin(False)
    world.run_for(5 * SECOND)
    r1.interfaces["eth1"].set_admin(True)
    world.run_for(20 * SECOND)
    assert speakers["R1"].all_established()
    assert speakers["R2"].all_established()
    assert speakers["R2"].stack.table.lookup(ip("10.1.0.5")) is not None


def test_open_with_wrong_asn_is_rejected(world):
    timers = BgpTimers()
    r1 = world.add_node("R1", tier=1)
    r2 = world.add_node("R2", tier=2)
    link = world.connect(r1, r2)
    link.end_a.assign_address(ip("172.16.0.0"), 31)
    link.end_b.assign_address(ip("172.16.0.1"), 31)
    speakers = {}
    for node, asn, peer_ip, peer_asn in (
        (r1, 65001, "172.16.0.1", 65002),
        (r2, 65002, "172.16.0.0", 64999),  # misconfigured remote-as
    ):
        stack = IpStack(node)
        stack.install_connected_routes()
        tcp = TcpService(stack)
        config = BgpConfig(asn=asn, router_id=node.interfaces["eth1"].address,
                           neighbors=[BgpNeighborConfig(ip(peer_ip), peer_asn,
                                                        "eth1")],
                           timers=timers)
        speakers[node.name] = BgpSpeaker(node, config, stack, tcp)
    for s in speakers.values():
        s.start()
    world.run(until=5 * SECOND)
    assert not speakers["R2"].all_established()


def test_timers_validation():
    with pytest.raises(ValueError):
        BgpTimers(keepalive_us=2 * SECOND, hold_us=1 * SECOND)
    with pytest.raises(ValueError):
        BgpTimers(keepalive_us=0)


def test_config_lines_render_listing1_shape():
    config = BgpConfig(
        asn=64512, router_id=ip("1.0.0.1"),
        neighbors=[BgpNeighborConfig(ip("172.16.0.2"), 64513, "eth1", bfd=True)],
        networks=[net("192.168.11.0/24")],
    )
    text = "\n".join(config.config_lines())
    assert "router bgp 64512" in text
    assert "neighbor 172.16.0.2 remote-as 64513" in text
    assert "neighbor 172.16.0.2 bfd" in text
    assert "timers bgp 1 3" in text
    assert "frr defaults datacenter" in text
