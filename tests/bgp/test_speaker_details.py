"""BGP speaker internals: update packing, MRAI batching, summaries."""

from __future__ import annotations

import pytest

from repro.bgp.config import BgpTimers
from repro.bgp.messages import BgpUpdate
from repro.harness.experiments import StackKind, StackTimers, build_and_converge
from repro.net.capture import Capture
from repro.sim.units import MILLISECOND, SECOND
from repro.stack.ipv4 import Ipv4Packet
from repro.stack.tcp_segment import TcpSegment
from repro.topology.clos import ClosParams, two_pod_params


def bgp_updates_in(capture: Capture):
    found = []
    for rec in capture.records:
        if rec.direction.value != "tx":
            continue
        packet = rec.frame.payload
        if isinstance(packet, Ipv4Packet) and isinstance(packet.payload,
                                                         TcpSegment):
            message = packet.payload.payload
            if isinstance(message, BgpUpdate):
                found.append(message)
    return found


def test_advertisements_never_share_distinct_paths():
    """In a fat-tree with unique ToR ASNs every prefix has a distinct
    AS_PATH, so correct BGP cannot pack NLRI across prefixes — each
    advertisement carries exactly one prefix."""
    from repro.net.world import World
    from repro.topology.clos import build_folded_clos
    from repro.harness.deploy import deploy_bgp
    from repro.harness.convergence import converge_from_cold

    world = World(seed=8)
    topo = build_folded_clos(two_pod_params(), world=world)
    dep = deploy_bgp(topo)
    link = world.find_link(topo.tors[0][0][0], topo.aggs[0][0][0])
    capture = Capture()
    capture.attach((link.end_a, link.end_b))
    dep.start()
    converge_from_cold(
        world, dep, lambda: dep.all_established() and dep.fib_complete())
    updates = bgp_updates_in(capture)
    assert updates, "expected UPDATE traffic on the ToR-agg link"
    assert all(len(u.nlri) == 1 for u in updates)
    # every advertised path ends in a distinct origin ASN
    origins = [u.attributes.as_path[-1] for u in updates if u.nlri]
    assert len(set(origins)) == len(origins)


def test_withdrawals_pack_into_one_update():
    """Several prefixes dying at once (a whole agg fails in a 3-ToR pod)
    leave in a single packed withdrawal UPDATE."""
    from repro.harness.failures import FailureInjector

    params = ClosParams(num_pods=2, tors_per_pod=3)
    world, topo, dep = build_and_converge(params, StackKind.BGP)
    top = topo.tops[0][0][0]
    capture = Capture()
    capture.attach_node(topo.node(top))
    FailureInjector(world).fail_node(topo.aggs[0][0][0])
    world.run_for(6 * SECOND)
    withdrawals = [u for u in bgp_updates_in(capture) if u.withdrawn]
    assert withdrawals, "the top spine must withdraw the lost pod prefixes"
    assert any(len(u.withdrawn) == 3 for u in withdrawals), (
        "the three rack prefixes lost together must share one UPDATE"
    )


def test_mrai_batches_withdrawals():
    """With a 200 ms MRAI, the withdrawals triggered by one failure are
    flushed together instead of per-prefix."""
    timers = StackTimers(bgp=BgpTimers(mrai_us=200 * MILLISECOND))
    params = ClosParams(num_pods=2, tors_per_pod=3)  # 3 prefixes per pod
    world, topo, dep = build_and_converge(params, StackKind.BGP,
                                          timers=timers)
    agg = topo.aggs[0][0][0]
    case = topo.failure_cases()["TC2"]
    t0 = world.sim.now
    topo.node(case.node).interfaces[case.interface].set_admin(False)
    world.run_for(2 * SECOND)
    tx = [r for r in world.trace.select(category="bgp.update.tx",
                                        node=agg, since=t0)]
    assert tx, "the agg must withdraw the lost rack prefix"
    # nothing leaves before the MRAI window closes
    assert all(r.time - t0 >= 200 * MILLISECOND for r in tx)


def test_speaker_summary_renders():
    world, topo, dep = build_and_converge(two_pod_params(), StackKind.BGP)
    summary = dep.speakers[topo.aggs[0][0][0]].summary()
    assert "local AS" in summary
    assert "established" in summary
    assert summary.count("established") == 4  # 2 ToRs + 2 tops


def test_mtp_summary_renders():
    world, topo, dep = build_and_converge(two_pod_params(), StackKind.MTP)
    tor_summary = dep.mtp_nodes[topo.tors[0][0][0]].summary()
    assert "ToR VID: 11" in tor_summary
    assert "neighbors: 2 up / 2" in tor_summary
    top_summary = dep.mtp_nodes[topo.tops[0][0][0]].summary()
    assert "top spine" in top_summary
    assert "VID table:" in top_summary
