"""Routing table: LPM, ECMP selection, change tracking."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.routing.ecmp import FlowKey, ecmp_hash
from repro.routing.table import NextHop, Route, RoutingTable
from repro.stack.addresses import Ipv4Address, Ipv4Network


def ip(text):
    return Ipv4Address.parse(text)


def net(text):
    return Ipv4Network.parse(text)


def test_lpm_prefers_longest_prefix():
    table = RoutingTable()
    table.install(Route(net("10.0.0.0/8"), (NextHop("eth1"),)))
    table.install(Route(net("10.1.0.0/16"), (NextHop("eth2"),)))
    table.install(Route(net("10.1.1.0/24"), (NextHop("eth3"),)))
    assert table.lookup(ip("10.1.1.5")).nexthops[0].interface == "eth3"
    assert table.lookup(ip("10.1.2.5")).nexthops[0].interface == "eth2"
    assert table.lookup(ip("10.9.9.9")).nexthops[0].interface == "eth1"
    assert table.lookup(ip("11.0.0.1")) is None


def test_default_route_matches_everything():
    table = RoutingTable()
    table.install(Route(net("0.0.0.0/0"), (NextHop("eth1", ip("10.0.0.1")),)))
    assert table.lookup(ip("200.1.2.3")) is not None


def test_install_replace_and_withdraw():
    table = RoutingTable()
    prefix = net("192.168.11.0/24")
    table.install(Route(prefix, (NextHop("eth1"),)))
    table.install(Route(prefix, (NextHop("eth2"),)))
    assert table.lookup(ip("192.168.11.1")).nexthops[0].interface == "eth2"
    assert len(table) == 1
    assert table.withdraw(prefix)
    assert not table.withdraw(prefix)
    assert table.lookup(ip("192.168.11.1")) is None


def test_identical_reinstall_does_not_count_as_change():
    table = RoutingTable()
    route = Route(net("10.0.0.0/24"), (NextHop("eth1"),), proto="bgp", metric=20)
    table.install(route)
    assert table.change_count == 1
    table.install(Route(net("10.0.0.0/24"), (NextHop("eth1"),), proto="bgp", metric=20))
    assert table.change_count == 1
    table.install(Route(net("10.0.0.0/24"), (NextHop("eth2"),), proto="bgp", metric=20))
    assert table.change_count == 2


def test_change_timestamps_recorded():
    from repro.sim.engine import Simulator

    sim = Simulator()
    table = RoutingTable(sim=sim)
    sim.schedule_at(500, lambda: table.install(Route(net("10.0.0.0/24"), (NextHop("e"),))))
    sim.run()
    assert table.last_change_time == 500


def test_ecmp_selection_is_flow_sticky():
    table = RoutingTable(salt=3)
    nexthops = (NextHop("eth1"), NextHop("eth2"), NextHop("eth3"))
    table.install(Route(net("10.0.0.0/8"), nexthops))
    flow = FlowKey(src=1, dst=2, proto=17, src_port=1000, dst_port=2000)
    picks = {table.select_nexthop(ip("10.1.1.1"), flow).interface for _ in range(10)}
    assert len(picks) == 1  # same flow -> same path


def test_ecmp_spreads_distinct_flows():
    table = RoutingTable()
    nexthops = (NextHop("eth1"), NextHop("eth2"))
    table.install(Route(net("10.0.0.0/8"), nexthops))
    seen = {
        table.select_nexthop(ip("10.1.1.1"),
                             FlowKey(src=s, dst=2, proto=17,
                                     src_port=1000 + s, dst_port=2000)).interface
        for s in range(64)
    }
    assert seen == {"eth1", "eth2"}


def test_route_requires_nexthops():
    with pytest.raises(ValueError):
        Route(net("10.0.0.0/8"), ())


def test_render_matches_ip_route_style():
    table = RoutingTable()
    table.install(Route(net("192.168.2.0/24"),
                        (NextHop("eth3", ip("172.16.0.1")),
                         NextHop("eth4", ip("172.16.8.1"))),
                        proto="bgp", metric=20))
    text = table.render()
    assert "192.168.2.0/24 proto bgp metric 20" in text
    assert "nexthop via 172.16.0.1 dev eth3 weight 1" in text


def test_memory_bytes_scales_with_entries_and_nexthops():
    table = RoutingTable()
    table.install(Route(net("10.0.0.0/24"), (NextHop("e1"),)))
    one = table.memory_bytes()
    table.install(Route(net("10.0.1.0/24"), (NextHop("e1"), NextHop("e2"))))
    assert table.memory_bytes() == one + 8 + 24


class TestEcmpHash:
    def test_deterministic(self):
        key = FlowKey(1, 2, 6, 80, 443)
        assert ecmp_hash(key, 8, salt=1) == ecmp_hash(key, 8, salt=1)

    def test_salt_changes_mapping_somewhere(self):
        keys = [FlowKey(s, 99, 6, 1234, 80) for s in range(32)]
        a = [ecmp_hash(k, 4, salt=0) for k in keys]
        b = [ecmp_hash(k, 4, salt=1) for k in keys]
        assert a != b

    def test_single_choice_short_circuits(self):
        assert ecmp_hash(FlowKey(1, 2), 1) == 0

    def test_invalid_choices(self):
        with pytest.raises(ValueError):
            ecmp_hash(FlowKey(1, 2), 0)

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=64),
    )
    def test_result_always_in_range(self, src, dst, n):
        assert 0 <= ecmp_hash(FlowKey(src, dst), n) < n

    def test_roughly_uniform_over_many_flows(self):
        counts = [0, 0, 0, 0]
        n_flows = 2000
        for s in range(n_flows):
            counts[ecmp_hash(FlowKey(s, 7, 17, 5000 + s, 9000), 4)] += 1
        for c in counts:
            assert abs(c - n_flows / 4) < n_flows * 0.08
