"""Stack registry: registration rules, spec resolution, and the
acceptance property of the plugin architecture — a stack registered
*outside* the harness runs through every experiment entry point without
modifying a single harness module.
"""

from __future__ import annotations

import pytest

from repro.core.config import MtpTimers
from repro.sim.units import MILLISECOND
from repro.topology.clos import two_pod_params
from repro.stacks import (
    Deployment,
    StackDefinition,
    StackKind,
    StackTimers,
    UnknownStackError,
    available_stacks,
    canonical_params,
    get_stack,
    register_stack,
    resolve_spec,
    unregister_stack,
)
from repro.stacks.builtin import (
    _mtp_detection_bound_us,
    _mtp_keepalive_period_us,
    deploy_mtp_stack,
)
from repro.harness.experiments import (
    ExperimentSpec,
    build_and_converge,
    experiment_task_key,
    run_failure_experiment,
)
from repro.harness.sweep import FailurePoint, single_failure_sweep


BUILTINS = ("mtp", "bgp", "bgp-bfd", "mtp-spray", "bgp-nomultipath")


# ----------------------------------------------------------------------
# registration rules
# ----------------------------------------------------------------------
def test_builtins_registered_in_order():
    assert available_stacks()[:5] == BUILTINS


def test_duplicate_name_rejected():
    defn = get_stack("mtp")
    with pytest.raises(ValueError, match="already registered"):
        register_stack(defn)
    # replace=True is the explicit override, and restores cleanly
    assert register_stack(defn, replace=True) is defn
    assert get_stack("mtp") is defn


def test_blank_name_rejected():
    defn = get_stack("mtp")
    for bad in ("", "   "):
        with pytest.raises(ValueError):
            register_stack(StackDefinition(
                name=bad, display="x", deploy=defn.deploy,
                detection_bound_us=defn.detection_bound_us,
                keepalive_period_us=defn.keepalive_period_us))


def test_unknown_stack_error_lists_available():
    with pytest.raises(UnknownStackError, match="mtp"):
        get_stack("ospf")
    with pytest.raises(UnknownStackError):
        unregister_stack("ospf")


# ----------------------------------------------------------------------
# spec resolution
# ----------------------------------------------------------------------
def test_resolve_spec_accepts_every_handle_shape():
    by_name = resolve_spec("bgp-bfd")
    by_enum = resolve_spec(StackKind.BGP_BFD)
    by_defn = resolve_spec(get_stack("bgp-bfd"))
    by_spec = resolve_spec(by_name)
    assert by_name == by_enum == by_defn == by_spec
    assert by_name.name == "bgp-bfd"
    assert by_name.params_dict() == {"bfd": True}


def test_resolve_spec_applies_timers():
    timers = StackTimers(mtp=MtpTimers(hello_us=25 * MILLISECOND,
                                       dead_us=50 * MILLISECOND))
    spec = resolve_spec("mtp", timers)
    assert spec.timers is timers
    # and re-resolving an existing spec with new timers swaps them
    assert resolve_spec(spec, StackTimers()).timers == StackTimers()


def test_resolve_spec_rejects_junk():
    with pytest.raises(TypeError):
        resolve_spec(42)


def test_canonical_params_sorted_and_stable():
    a = canonical_params({"b": 2, "a": 1})
    b = canonical_params({"a": 1, "b": 2})
    assert a == b == (("a", 1), ("b", 2))


def test_variant_cache_keys_differ_from_parent():
    """mtp and mtp-spray share a deploy callable; only their canonical
    params differ — the cache key must still separate them."""
    keys = {
        experiment_task_key(ExperimentSpec(
            params=two_pod_params(), stack=resolve_spec(name),
            case_name="TC1", seed=0))
        for name in BUILTINS
    }
    assert len(keys) == len(BUILTINS)


# ----------------------------------------------------------------------
# plugin acceptance: a stack registered here, in a test file, runs
# through the failure harness and the robustness sweep untouched
# ----------------------------------------------------------------------
@pytest.fixture
def throwaway_stack():
    name = "mtp-fasthello"
    register_stack(StackDefinition(
        name=name,
        display="MR-MTP (fast hello)",
        deploy=deploy_mtp_stack,
        detection_bound_us=_mtp_detection_bound_us,
        keepalive_period_us=_mtp_keepalive_period_us,
        description="test-only variant with 20/60 ms hello/dead timers",
        default_params={},
    ))
    try:
        yield name
    finally:
        unregister_stack(name)


def test_registered_variant_runs_failure_experiment(throwaway_stack):
    result = run_failure_experiment(two_pod_params(), throwaway_stack, "TC4",
                                    seed=0)
    assert result.stack == throwaway_stack
    assert result.display == "MR-MTP (fast hello)"
    # same deploy + same timers as plain mtp -> same physics
    golden = run_failure_experiment(two_pod_params(), "mtp", "TC4", seed=0)
    assert result.convergence_us == golden.convergence_us
    assert result.blast_routers == golden.blast_routers


def test_registered_variant_runs_robustness_sweep(throwaway_stack):
    results = single_failure_sweep(
        two_pod_params(), throwaway_stack,
        points=[FailurePoint("L-1-1", "eth1", "S-1-1"),
                FailurePoint("T-1", "eth1", "S-1-1")])
    assert len(results) == 2
    assert all(r.ok for r in results)


def test_built_deployment_satisfies_protocol(throwaway_stack):
    world, topo, dep = build_and_converge(two_pod_params(), throwaway_stack)
    assert isinstance(dep, Deployment)
    assert dep.ready()
    assert dep.keepalive_period_us() == StackTimers().mtp.hello_us
    assert dep.detection_bound_us() == StackTimers().mtp.dead_us
    stats = dep.table_stats(topo.aggs[0][0][0])
    assert stats.entries > 0 and stats.memory_bytes > 0


def test_spec_is_picklable_for_fanout():
    import pickle

    spec = resolve_spec("mtp-spray")
    assert pickle.loads(pickle.dumps(spec)) == spec
