"""Architecture lint: the harness and CLI must stay stack-agnostic.

The stack-plugin refactor's core invariant is that per-stack knowledge
lives only in plugin definitions (``repro.stacks.builtin`` /
``variants``).  These greps keep it that way: any new ``StackKind.X``
branch or ``isinstance(deployment, ...)`` dispatch in a harness module
would silently re-couple the harness to the builtin stacks and break
third-party plugins — fail it at review time instead.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

# every module that must not know which stack it is running
AGNOSTIC_FILES = sorted(
    [*(SRC / "harness").glob("*.py"), SRC / "cli.py",
     SRC / "stacks" / "base.py", SRC / "stacks" / "registry.py"])


def _matches(pattern: str, path: Path) -> list[str]:
    rx = re.compile(pattern)
    return [f"{path.relative_to(SRC.parent.parent)}:{n}: {line.rstrip()}"
            for n, line in enumerate(path.read_text().splitlines(), 1)
            if rx.search(line)]


def test_files_under_lint_exist():
    names = {p.name for p in AGNOSTIC_FILES}
    assert {"experiments.py", "sweep.py", "cache.py", "pathtrace.py",
            "analysis.py", "deploy.py", "cli.py"} <= names


def test_no_stackkind_branching_outside_builtin_plugins():
    """``StackKind.<member>`` may appear only inside the builtin plugin
    module — anywhere else it is enum dispatch the registry replaced."""
    offenders = [m for path in AGNOSTIC_FILES
                 for m in _matches(r"StackKind\.", path)]
    assert not offenders, "\n".join(offenders)


def test_no_deployment_isinstance_dispatch():
    """Per-stack behavior goes through the Deployment protocol, never
    through ``isinstance(dep, MtpDeployment)``-style type sniffing."""
    offenders = [
        m for path in AGNOSTIC_FILES if path.name != "deploy.py"
        for m in _matches(r"isinstance\([^)]*(Mtp|Bgp)Deployment", path)]
    assert not offenders, "\n".join(offenders)


def test_no_hardcoded_stack_name_dispatch():
    """Comparing ``spec.name`` against string literals is the same
    coupling with a different spelling."""
    rx = r"\.name\s*(==|!=|\bin\b)\s*[(\[]?\s*['\"](mtp|bgp)"
    offenders = [m for path in AGNOSTIC_FILES for m in _matches(rx, path)]
    assert not offenders, "\n".join(offenders)
