"""Extension — scalability beyond the paper's testbed (section IX).

The paper's FABRIC reservation capped the evaluation at 4 PoDs and 3
tiers; its future work calls for scaling the DCN "to multiple tiers
using Mininet".  The simulator removes the cap: this bench sweeps the
PoD count and adds a 4-tier (two-zone, super-spine) fabric, tracking the
trends the paper predicts — MR-MTP's convergence stays flat (dead-timer
dominated) while BGP's control overhead keeps growing with fabric size.
"""

from __future__ import annotations

import pytest

from repro.sim.units import MILLISECOND
from repro.topology.clos import ClosParams
from repro.harness.experiments import (
    StackKind,
    build_and_converge,
    run_failure_experiment,
)

from conftest import emit

POD_SWEEP = (2, 4, 6, 8)


def test_ext_pod_sweep(benchmark, results_dir):
    def measure():
        out = {}
        for pods in POD_SWEEP:
            params = ClosParams(num_pods=pods)
            for kind in (StackKind.MTP, StackKind.BGP):
                out[(pods, kind)] = run_failure_experiment(params, kind, "TC1")
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        [pods, kind.value,
         f"{results[(pods, kind)].convergence_ms:.2f}",
         results[(pods, kind)].control_bytes,
         results[(pods, kind)].blast_radius]
        for pods in POD_SWEEP
        for kind in (StackKind.MTP, StackKind.BGP)
    ]
    emit(results_dir, "ext_scalability_pods",
         "Extension — TC1 metrics vs PoD count (3-tier)",
         ["pods", "stack", "conv ms", "ctrl B", "blast"], rows)

    # MR-MTP convergence stays dead-timer-flat as the fabric grows
    mtp_convs = [results[(p, StackKind.MTP)].convergence_us for p in POD_SWEEP]
    assert max(mtp_convs) - min(mtp_convs) < 10 * MILLISECOND
    # control overhead grows with fabric size for both, BGP faster
    for kind in (StackKind.MTP, StackKind.BGP):
        ctrl = [results[(p, kind)].control_bytes for p in POD_SWEEP]
        assert ctrl == sorted(ctrl), f"{kind} overhead must be monotone"
    gap2 = (results[(2, StackKind.BGP)].control_bytes
            / results[(2, StackKind.MTP)].control_bytes)
    gap8 = (results[(8, StackKind.BGP)].control_bytes
            / results[(8, StackKind.MTP)].control_bytes)
    assert gap8 >= gap2 * 0.9, "the BGP:MTP overhead gap must not shrink"


def test_ext_four_tier_fabric(benchmark, results_dir):
    """Two zones stitched by super-spines: MR-MTP's VID scheme 'can
    easily scale to any number of spine tiers' (paper section III.B)."""
    params = ClosParams(num_pods=2, zones=2, supers_per_group=2)

    def measure():
        out = {}
        for kind in (StackKind.MTP, StackKind.BGP):
            world, topo, dep = build_and_converge(
                params, kind, max_converge_us=120_000_000)
            if kind is StackKind.MTP:
                supers = topo.all_supers()
                depth = max(
                    v.depth
                    for s in supers
                    for v in dep.mtp_nodes[s].table.all_vids()
                )
                entries = dep.mtp_nodes[supers[0]].table.entry_count()
            else:
                depth = 0
                entries = len(dep.stacks[topo.all_supers()[0]].table)
            result = run_failure_experiment(params, kind, "TC1")
            out[kind] = (depth, entries, result)
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        [kind.value, depth, entries, f"{res.convergence_ms:.2f}",
         res.control_bytes]
        for kind, (depth, entries, res) in results.items()
    ]
    emit(results_dir, "ext_four_tier",
         "Extension — 4-tier (2-zone) fabric, TC1",
         ["stack", "super VID depth", "super entries", "conv ms", "ctrl B"],
         rows)

    depth, entries, mtp_result = results[StackKind.MTP]
    # VIDs one tier deeper: root.torport.aggport.topport
    assert depth == 4
    # every super-spine meshes all 8 ToR trees
    assert entries >= 8
    # convergence still dead-timer bound
    assert mtp_result.convergence_us <= 120 * MILLISECOND
    _, _, bgp_result = results[StackKind.BGP]
    assert mtp_result.control_bytes < bgp_result.control_bytes
