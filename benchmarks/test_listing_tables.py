"""Listings 3 & 5 — forwarding-table size and shape.

Paper's comparison: a tier-2 spine's BGP RIB holds every rack prefix
(with ECMP next hops) plus connected routes, while an MR-MTP spine's VID
table holds a handful of compact VIDs per port; "as the size of the
network increases, a proportional increase in the routing table sizes
will be noticed" for BGP.
"""

from __future__ import annotations

import pytest

from repro.topology.clos import ClosParams, four_pod_params, two_pod_params
from repro.harness.experiments import StackKind, run_table_size_experiment

from conftest import emit


def test_listing_table_sizes(benchmark, results_dir):
    def measure():
        return {
            (pods, kind): run_table_size_experiment(
                two_pod_params() if pods == 2 else four_pod_params(), kind)
            for pods in (2, 4)
            for kind in (StackKind.MTP, StackKind.BGP)
        }

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    for (pods, kind), by_role in sorted(results.items(),
                                        key=lambda kv: (kv[0][0], kv[0][1].value)):
        for role in ("tor", "agg", "top"):
            r = by_role[role]
            rows.append([f"{pods}-PoD", kind.value, role, r.node,
                         r.entries, r.memory_bytes])
    emit(results_dir, "listing_table_sizes",
         "Listings 3/5 — forwarding-table size at converged routers",
         ["fabric", "stack", "role", "node", "entries", "bytes"], rows)

    for pods in (2, 4):
        racks = 2 * pods
        bgp = results[(pods, StackKind.BGP)]
        mtp = results[(pods, StackKind.MTP)]
        # every BGP router carries all rack prefixes (+ connected)
        assert bgp["agg"].entries >= racks
        # the paper's Listing 5: a top spine's VID table is one VID per
        # ToR; an agg's is one per pod ToR
        assert mtp["top"].entries == racks
        assert mtp["agg"].entries == 2
        assert mtp["tor"].entries == 0
        # MR-MTP state is smaller than the BGP RIB at every tier
        for role in ("agg", "top"):
            assert mtp[role].memory_bytes < bgp[role].memory_bytes, (pods, role)

    # BGP table size grows proportionally with the fabric
    assert (results[(4, StackKind.BGP)]["agg"].entries
            > results[(2, StackKind.BGP)]["agg"].entries)


def test_listing_rendered_shapes(benchmark):
    """Rendered tables match the paper's listing formats."""
    def measure():
        return (run_table_size_experiment(four_pod_params(), StackKind.BGP),
                run_table_size_experiment(four_pod_params(), StackKind.MTP))

    bgp, mtp = benchmark.pedantic(measure, rounds=1, iterations=1)
    # Listing 3: `proto bgp metric 20` with ECMP nexthop blocks
    assert "proto bgp metric 20" in bgp["agg"].rendered
    assert "nexthop via" in bgp["agg"].rendered
    assert "weight 1" in bgp["agg"].rendered
    # Listing 5: `ethN   vid, vid` lines, one per port
    top_lines = mtp["top"].rendered.splitlines()
    assert len(top_lines) == 4  # one per pod-facing port
    assert all(line.split()[0].startswith("eth") for line in top_lines)
