"""Simulator performance — the substrate's own cost.

Per the profile-before-you-trust discipline: raw event-engine
throughput, protocol bring-up cost per fabric size, and the cost of one
complete failure experiment.  These are the numbers that bound how far
the scalability extension can push (events scale with routers x timers x
simulated seconds).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

import bench_engine
import bench_workload

from repro.sim.engine import WHEEL_BACKEND, Simulator
from repro.sim.units import SECOND
from repro.topology.clos import ClosParams
from repro.harness.experiments import (
    StackKind,
    build_and_converge,
    run_failure_experiment,
)


def test_raw_event_throughput(benchmark):
    """Schedule+dispatch cost of the bare engine (no protocols)."""
    N = 200_000

    def churn():
        sim = Simulator()

        def tick(i=[0]):
            i[0] += 1
            if i[0] < N:
                sim.schedule_after(1, tick)

        # seed a fan of timers to keep the heap non-trivial
        for t in range(1, 1000):
            sim.schedule_at(t * 7, lambda: None)
        sim.schedule_after(1, tick)
        sim.run()
        return sim.events_processed

    processed = benchmark(churn)
    assert processed >= N


@pytest.mark.parametrize("pods", [2, 4, 8])
def test_fabric_convergence_cost(benchmark, pods):
    """Wall-clock cost of building + converging an MR-MTP fabric."""
    params = ClosParams(num_pods=pods)

    def converge():
        world, topo, dep = build_and_converge(params, StackKind.MTP,
                                              trace_enabled=False)
        return world.sim.events_processed

    events = benchmark.pedantic(converge, rounds=1, iterations=1)
    assert events > 0


def test_full_failure_experiment_cost(benchmark):
    """One complete TC1 run (build, converge, fail, measure) — the unit
    of work every figure multiplies."""
    result = benchmark.pedantic(
        lambda: run_failure_experiment(ClosParams(num_pods=2),
                                       StackKind.BGP, "TC1"),
        rounds=1, iterations=1,
    )
    assert result.convergence_us > 0


# ----------------------------------------------------------------------
# BENCH_engine.json regression guards: the recorded trajectory is the
# baseline; a change that costs the engine its fast path fails here.
# Tolerances are generous (CI hosts vary widely) — these catch
# catastrophic regressions, not single-digit drift.
# ----------------------------------------------------------------------
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


@pytest.fixture(scope="module")
def bench_doc():
    assert BENCH_PATH.exists(), (
        "BENCH_engine.json missing — regenerate with "
        "`PYTHONPATH=src python benchmarks/bench_engine.py`")
    return json.loads(BENCH_PATH.read_text())


def _sync_timers_throughput(backend: str, n: int = 100_000) -> float:
    best = 0.0
    for _ in range(3):
        best = max(best, bench_engine.bench_sync_timers(backend, n))
    return best


def test_recorded_trajectory_meets_speedup_target(bench_doc):
    """The committed artifact must record the >= 3x headline speedup
    over the pre-change engine (same host, same workload)."""
    assert bench_doc["headline"]["speedup_vs_pre_change"] >= 3.0
    baseline = bench_doc["baseline_pre_change"]["events_per_sec"]
    assert baseline["sync_timers_1024"] > 0  # trajectory is anchored


def test_live_engine_beats_pre_change_baseline(bench_doc):
    """Live wheel throughput on the headline workload must comfortably
    beat the frozen pre-change heap number.  The recorded speedup is
    ~3.3x; requiring 1.5x leaves 2x headroom for slower CI hosts."""
    baseline = bench_doc["baseline_pre_change"]["events_per_sec"][
        "sync_timers_1024"]
    live = _sync_timers_throughput(WHEEL_BACKEND)
    assert live >= 1.5 * baseline, (
        f"engine fast path regressed: {live:,.0f} ev/s live vs "
        f"{baseline:,} ev/s pre-change baseline (need >= 1.5x)")


def test_live_engine_within_band_of_recorded_run(bench_doc):
    """Sanity band against the recorded wheel number itself: a 4x
    collapse on the same workload is a regression on any host."""
    recorded = bench_doc["micro"]["sync_timers_1024"]["events_per_sec"][
        WHEEL_BACKEND]
    live = _sync_timers_throughput(WHEEL_BACKEND)
    assert live >= 0.25 * recorded, (
        f"live {live:,.0f} ev/s fell out of band of recorded "
        f"{recorded:,} ev/s")


def test_32pod_tc1_within_tier1_budget():
    """The acceptance gate: a 32-PoD TC1 failure experiment must fit a
    tier-1 time budget (recorded ~0.4s wall; 30s is the hard ceiling)."""
    t0 = time.perf_counter()
    result = run_failure_experiment(ClosParams(num_pods=32), "mtp", "TC1",
                                    seed=0)
    wall = time.perf_counter() - t0
    assert result.convergence_us > 0
    assert wall < 30.0, f"32-PoD TC1 took {wall:.1f}s (budget 30s)"


# ----------------------------------------------------------------------
# BENCH_workload.json regression guards: the flow-level workload engine
# must hold its recorded million-flow trajectory.
# ----------------------------------------------------------------------
WORKLOAD_BENCH_PATH = (Path(__file__).resolve().parent.parent
                       / "BENCH_workload.json")


@pytest.fixture(scope="module")
def workload_bench_doc():
    assert WORKLOAD_BENCH_PATH.exists(), (
        "BENCH_workload.json missing — regenerate with "
        "`PYTHONPATH=src python benchmarks/bench_workload.py`")
    return json.loads(WORKLOAD_BENCH_PATH.read_text())


def test_recorded_workload_meets_million_flow_budget(workload_bench_doc):
    """The committed artifact must record the acceptance run: one
    million permutation flows on the 8-PoD fabric, end to end, inside
    the 60 s single-core budget, with byte conservation holding."""
    head = workload_bench_doc["headline"]
    assert head["flows"] == 1_000_000
    assert head["within_budget"] is True
    assert head["total_s"] < head["budget_s"] == 60.0
    assert head["max_conservation_error"] < 1e-6
    assert workload_bench_doc["fabric"]["pods"] == 8


def test_live_workload_throughput_within_band(workload_bench_doc):
    """Live 100k-flow throughput on the same fabric must stay within a
    generous band of the recorded grid point (recorded ~220k flows/s;
    requiring 10% catches an order-of-magnitude collapse, not host
    drift)."""
    recorded = next(row for row in workload_bench_doc["grid"]
                    if row["flows"] == 100_000)
    world, topo, deployment, _ = bench_workload.build_fabric()
    best = min(bench_workload.bench_point(world, topo, deployment,
                                          100_000)["total_s"]
               for _ in range(2))
    live = 100_000 / best
    assert live >= 0.1 * recorded["flows_per_sec"], (
        f"workload engine regressed: {live:,.0f} flows/s live vs "
        f"{recorded['flows_per_sec']:,} recorded (need >= 10%)")
