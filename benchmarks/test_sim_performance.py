"""Simulator performance — the substrate's own cost.

Per the profile-before-you-trust discipline: raw event-engine
throughput, protocol bring-up cost per fabric size, and the cost of one
complete failure experiment.  These are the numbers that bound how far
the scalability extension can push (events scale with routers x timers x
simulated seconds).
"""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.units import SECOND
from repro.topology.clos import ClosParams
from repro.harness.experiments import (
    StackKind,
    build_and_converge,
    run_failure_experiment,
)


def test_raw_event_throughput(benchmark):
    """Schedule+dispatch cost of the bare engine (no protocols)."""
    N = 200_000

    def churn():
        sim = Simulator()

        def tick(i=[0]):
            i[0] += 1
            if i[0] < N:
                sim.schedule_after(1, tick)

        # seed a fan of timers to keep the heap non-trivial
        for t in range(1, 1000):
            sim.schedule_at(t * 7, lambda: None)
        sim.schedule_after(1, tick)
        sim.run()
        return sim.events_processed

    processed = benchmark(churn)
    assert processed >= N


@pytest.mark.parametrize("pods", [2, 4, 8])
def test_fabric_convergence_cost(benchmark, pods):
    """Wall-clock cost of building + converging an MR-MTP fabric."""
    params = ClosParams(num_pods=pods)

    def converge():
        world, topo, dep = build_and_converge(params, StackKind.MTP,
                                              trace_enabled=False)
        return world.sim.events_processed

    events = benchmark.pedantic(converge, rounds=1, iterations=1)
    assert events > 0


def test_full_failure_experiment_cost(benchmark):
    """One complete TC1 run (build, converge, fail, measure) — the unit
    of work every figure multiplies."""
    result = benchmark.pedantic(
        lambda: run_failure_experiment(ClosParams(num_pods=2),
                                       StackKind.BGP, "TC1"),
        rounds=1, iterations=1,
    )
    assert result.convergence_us > 0
