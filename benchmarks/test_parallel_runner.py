"""Extension — parallel experiment runner: correctness and wall clock.

The acceptance bar for the fan-out subsystem: the 2-PoD robustness sweep
with ``jobs=4`` must produce *byte-identical* SweepResult summaries and
per-point run digests to the serial path, and the measured wall-clock
numbers (serial, fanned-out, cache replay) are persisted to
``benchmarks/results/ext_parallel_runner.txt``.  On a single-core
container the pool can't beat serial on raw compute — the recorded
speedup then comes from the result cache, which replays converged points
in milliseconds; on multi-core hardware the fan-out scales with cores.
"""

from __future__ import annotations

import os
import time

from repro.topology.clos import two_pod_params
from repro.harness.cache import ResultCache
from repro.harness.experiments import StackKind
from repro.harness.parallel import FanoutReport
from repro.harness.sweep import single_failure_sweep_outcomes, summarize

from conftest import emit


def _timed_sweep(jobs, cache=None, report=None):
    t0 = time.perf_counter()
    outcomes = single_failure_sweep_outcomes(
        two_pod_params(), StackKind.MTP, jobs=jobs, cache=cache,
        report=report,
    )
    return outcomes, time.perf_counter() - t0


def test_ext_parallel_sweep_identical_and_timed(benchmark, results_dir,
                                                tmp_path):
    def run_all():
        serial, t_serial = _timed_sweep(jobs=1)
        fanned, t_fanned = _timed_sweep(jobs=4)
        cache = ResultCache(tmp_path / "cache")
        _timed_sweep(jobs=4, cache=cache)  # populate
        replay_report = FanoutReport()
        replayed, t_replay = _timed_sweep(jobs=4, cache=cache,
                                          report=replay_report)
        return (serial, t_serial, fanned, t_fanned, replayed, t_replay,
                replay_report)

    (serial, t_serial, fanned, t_fanned, replayed, t_replay,
     replay_report) = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # byte-identical results and digests across all three paths
    assert summarize([o.result for o in serial]) \
        == summarize([o.result for o in fanned]) \
        == summarize([o.result for o in replayed])
    assert [o.digest for o in serial] == [o.digest for o in fanned] \
        == [o.digest for o in replayed]
    assert [o.result for o in serial] == [o.result for o in fanned]
    assert replay_report.cached == len(serial)
    # the cache replay is the guaranteed-everywhere speedup
    assert t_replay < t_serial

    rows = [
        ["serial (jobs=1)", f"{t_serial:.2f}", "1.00x"],
        ["pool (jobs=4)", f"{t_fanned:.2f}",
         f"{t_serial / t_fanned:.2f}x"],
        ["cache replay (jobs=4)", f"{t_replay:.2f}",
         f"{t_serial / t_replay:.2f}x"],
    ]
    emit(results_dir, "ext_parallel_runner",
         "Extension — 2-PoD MR-MTP robustness sweep, 32 points",
         ["path", "wall clock (s)", "speedup"], rows,
         note=f"host cores: {os.cpu_count()}; digests byte-identical "
              f"across all paths")
