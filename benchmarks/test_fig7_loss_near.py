"""Fig. 7 — packet loss, traffic sender *closer* to the failure point.

Traffic flows from the first rack (ToR VID 11) toward the last rack
(ToR VID 14 in 2-PoD), on a flow chosen to cross the failed link.
Paper's shape: TC1/TC3 lose almost nothing (the sender-side router sees
its own port die and switches instantly); TC2/TC4 lose a dead-timer's
worth of traffic — bounded by 100 ms for MR-MTP, ~300 ms for BGP+BFD and
the full hold time (~3 s) for plain BGP.
"""

from __future__ import annotations

import pytest

from repro.topology.clos import four_pod_params, two_pod_params
from repro.harness.experiments import StackKind, run_packet_loss_experiment

from conftest import ALL_CASES, emit

STACKS = (StackKind.MTP, StackKind.BGP, StackKind.BGP_BFD)
RATE_PPS = 1000


def sweep(params, direction):
    return {
        (kind, case): run_packet_loss_experiment(
            params, kind, case, direction=direction, rate_pps=RATE_PPS)
        for kind in STACKS for case in ALL_CASES
    }


@pytest.mark.parametrize("pods,params_fn", [(2, two_pod_params),
                                            (4, four_pod_params)])
def test_fig7_loss_sender_near(benchmark, results_dir, pods, params_fn):
    results = benchmark.pedantic(
        lambda: sweep(params_fn(), "near"), rounds=1, iterations=1
    )
    rows = [
        [kind.value] + [results[(kind, case)].lost for case in ALL_CASES]
        for kind in STACKS
    ]
    emit(results_dir, f"fig7_loss_near_{pods}pod",
         f"Fig. 7 — packets lost, sender near failure, {pods}-PoD "
         f"({RATE_PPS} pps)",
         ["stack"] + list(ALL_CASES), rows)

    lost = {k: results[k].lost for k in results}
    for kind in STACKS:
        # local-detection cases lose (almost) nothing
        assert lost[(kind, "TC1")] <= 5, kind
        assert lost[(kind, "TC3")] <= 5, kind
    for case in ("TC2", "TC4"):
        mtp, bfd, bgp = (lost[(StackKind.MTP, case)],
                         lost[(StackKind.BGP_BFD, case)],
                         lost[(StackKind.BGP, case)])
        assert mtp < bfd < bgp, (case, mtp, bfd, bgp)
        # dead-timer bounds (+ margin): 100 ms, 300 ms, 3 s at 1000 pps
        assert mtp <= 130, case
        assert bfd <= 450, case
        assert bgp <= 3300, case
        assert bgp >= 1000, f"{case}: plain BGP must lose a hold-timer's worth"


def test_fig7_no_duplicates_or_reordering(benchmark):
    """The failover must not duplicate or reorder the surviving flow."""
    result = benchmark.pedantic(
        lambda: run_packet_loss_experiment(
            two_pod_params(), StackKind.MTP, "TC2", direction="near"),
        rounds=1, iterations=1,
    )
    assert result.duplicated == 0
    assert result.out_of_order == 0
