"""Extension — exhaustive double-failure sweep against the oracle.

Every *pair* of fabric link cuts on the 2-PoD (16 links -> 120
combinations), for both protocol stacks: after reconvergence the deployed forwarding state
must agree exactly with the valley-free reachability oracle — deliver
wherever a valley-free path survives (no blackholes, no over-pruning)
and drop wherever none does.  Double failures are where the paper's
single-failure update rules alone would blackhole; the
default-unreachability extension (DESIGN.md §5) is what makes MR-MTP
pass this sweep.
"""

from __future__ import annotations

import itertools

import pytest

from repro.sim.units import SECOND
from repro.topology.clos import TIER_SERVER, two_pod_params
from repro.harness.experiments import StackKind, build_and_converge
from repro.harness.failures import FailureInjector
from repro.harness.oracle import compare_with_oracle
from repro.harness.parallel import execute_tasks

from conftest import emit


def fabric_links(topo):
    pairs = []
    for link in topo.world.links:
        a, b = link.end_a.node, link.end_b.node
        if a.tier == TIER_SERVER or b.tier == TIER_SERVER:
            continue
        pairs.append((a.name, b.name))
    return pairs


def _pair_task(spec):
    """One double-cut combination (top-level: picklable for the pool)."""
    kind, settle_us, link_i, link_j = spec
    world, topo, dep = build_and_converge(two_pod_params(), kind,
                                          trace_enabled=False)
    injector = FailureInjector(world)
    injector.cut_link(*link_i)
    injector.cut_link(*link_j)
    world.run_for(settle_us)
    bad = compare_with_oracle(dep, topo, probe_ports=(40000, 40001))
    return [(link_i, link_j, d) for d in bad]


def run_sweep(kind: StackKind, settle_us: int, jobs: int = 1):
    world0, topo0, _ = build_and_converge(two_pod_params(), kind)
    links = fabric_links(topo0)
    combos = list(itertools.combinations(range(len(links)), 2))
    specs = [(kind, settle_us, links[i], links[j]) for i, j in combos]
    per_pair = execute_tasks(specs, _pair_task, jobs=jobs)
    disagreements = [d for pair in per_pair for d in pair]
    return len(combos), disagreements


@pytest.mark.parametrize("kind,settle", [
    (StackKind.MTP, 2 * SECOND),
    (StackKind.BGP, 8 * SECOND),
])
def test_ext_double_failure_sweep(benchmark, results_dir, kind, settle,
                                  jobs):
    combos, disagreements = benchmark.pedantic(
        lambda: run_sweep(kind, settle, jobs=jobs), rounds=1, iterations=1)
    rows = [[kind.value, combos, combos * 12, len(disagreements)]]
    emit(results_dir, f"ext_double_failures_{kind.name.lower()}",
         f"Extension — double link-cut sweep vs oracle, 2-PoD, {kind.value}",
         ["stack", "failure pairs", "pair checks", "disagreements"], rows)
    assert combos == 120
    assert disagreements == [], disagreements[:5]
