"""Extension — failure cases beyond TC1-TC4 (paper section IX).

The paper's future work lists "extended failure test cases"; the
simulator makes them cheap: whole-device failures (an agg and a top
spine) and bidirectional link cuts, compared across the three stacks.
A link *cut* differs from the paper's one-sided admin-down: both ends
detect locally and immediately, so even plain BGP converges fast.
"""

from __future__ import annotations

import pytest

from repro.sim.units import MILLISECOND, SECOND
from repro.topology.clos import two_pod_params
from repro.harness.convergence import ConvergenceMonitor
from repro.harness.experiments import (
    StackKind,
    build_and_converge,
    detection_bound_us,
    StackTimers,
)
from repro.harness.failures import FailureInjector
from repro.harness.metrics import blast_radius, snapshot_table_change_counts

from conftest import emit

STACKS = (StackKind.MTP, StackKind.BGP, StackKind.BGP_BFD)


def run_case(kind, inject):
    timers = StackTimers()
    world, topo, dep = build_and_converge(two_pod_params(), kind,
                                          timers=timers)
    monitor = ConvergenceMonitor(world, dep.update_categories())
    before = snapshot_table_change_counts(dep.forwarding_tables())
    injector = FailureInjector(world)
    monitor.arm()
    inject(injector, topo)
    monitor.run_until_quiet(
        quiet_us=1 * SECOND, max_wait_us=30 * SECOND,
        min_wait_us=detection_bound_us(kind, timers) + SECOND,
    )
    conv = monitor.convergence_time_us() or 0
    blast = blast_radius(before, dep.forwarding_tables())
    return conv, monitor.update_bytes, len(blast)


CASES = {
    "agg-node-down": lambda inj, topo: inj.fail_node(topo.aggs[0][0][0]),
    "top-node-down": lambda inj, topo: inj.fail_node(topo.tops[0][0][0]),
    "tor-agg-cut": lambda inj, topo: inj.cut_link(topo.tors[0][0][0],
                                                  topo.aggs[0][0][0]),
    "agg-top-cut": lambda inj, topo: inj.cut_link(topo.aggs[0][0][0],
                                                  topo.tops[0][0][0]),
}


def test_ext_failure_cases(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: {
            (name, kind): run_case(kind, inject)
            for name, inject in CASES.items()
            for kind in STACKS
        },
        rounds=1, iterations=1,
    )
    rows = [
        [name, kind.value, f"{conv / MILLISECOND:.2f}", ctrl, blast]
        for (name, kind), (conv, ctrl, blast) in sorted(
            results.items(), key=lambda kv: (kv[0][0], kv[0][1].value))
    ]
    emit(results_dir, "ext_failure_cases",
         "Extension — node failures and bidirectional link cuts, 2-PoD",
         ["case", "stack", "conv ms", "ctrl B", "blast"], rows)

    for name in CASES:
        mtp_conv, mtp_ctrl, _ = results[(name, StackKind.MTP)]
        bgp_conv, bgp_ctrl, _ = results[(name, StackKind.BGP)]
        # sub-millisecond tolerance: when both stacks detect locally the
        # ordering is down to per-update processing epsilon
        assert mtp_conv <= bgp_conv + 1 * MILLISECOND, name
        # a dead top spine generates zero updates under both stacks
        # (neighbors only drop a next hop), hence <=
        assert mtp_ctrl <= bgp_ctrl, name

    # a bidirectional cut is detected locally at both ends: every stack
    # converges below its remote-detection bound
    for kind in STACKS:
        conv, _, _ = results[("tor-agg-cut", kind)]
        assert conv < 100 * MILLISECOND, kind

    # node failures still require the neighbors' timers (the dead node
    # cannot announce anything)
    assert results[("agg-node-down", StackKind.BGP)][0] >= 2000 * MILLISECOND
    assert results[("agg-node-down", StackKind.MTP)][0] <= 150 * MILLISECOND
