"""Extension — the false-positive chaos grid.

The paper argues for Quick-to-Detect (one missed 50 ms hello declares
the neighbour dead) purely on reaction speed.  This extension measures
the cost side on *gray* links: a link that loses frames but never goes
down.  Sweeping loss rate x stack shows where each stack's detector
starts false-flagging the healthy neighbour — MR-MTP's one-missed-hello
trips first, BGP's keepalive-x-3 and BFD's detect-mult-x-3 hold out to
far higher loss — and what each pays in flaps and route churn.
"""

from __future__ import annotations

from repro.harness.chaos import (
    false_positive_thresholds,
    run_chaos_suite,
)
from repro.topology.clos import two_pod_params

from conftest import emit

RATES = (0.0, 0.02, 0.05, 0.1, 0.2, 0.3)
STACKS = ("mtp", "bgp", "bgp-bfd")
#: liveness-enabled variants (DESIGN §14): same protocols, adaptive
#: detection + flap damping — the grid's zero-false-positive rows
ADAPTIVE_STACKS = ("mtp-adaptive", "bgp-bfd-damped")
WINDOW_MS = 5000


def test_ext_chaos_false_positive_grid(benchmark, results_dir, jobs):
    def measure():
        outcomes = run_chaos_suite(two_pod_params(),
                                   STACKS + ADAPTIVE_STACKS, rates=RATES,
                                   window_ms=WINDOW_MS, jobs=jobs)
        return [o.result for o in outcomes]

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = [[r.stack, f"{r.loss:.2f}", r.false_positives, r.flaps,
             r.route_churn, f"{r.goodput:.3f}"]
            for r in results]
    thresholds = false_positive_thresholds(results)
    note = "; ".join(
        f"{stack}: {'none on grid' if t is None else f'loss >= {t:.2f}'}"
        for stack, t in sorted(thresholds.items()))
    emit(results_dir, "ext_chaos_false_positives",
         f"Extension — false positives on a lossy-but-healthy uplink "
         f"({WINDOW_MS} ms quiet window)",
         ["stack", "loss", "false-pos", "flaps", "churn", "goodput"],
         rows, note=f"false-positive thresholds: {note}")

    by_point = {(r.stack, r.loss): r for r in results}
    # the control row: a clean fabric never false-flags, on any stack
    for stack in STACKS + ADAPTIVE_STACKS:
        clean = by_point[(stack, 0.0)]
        assert clean.false_positives == 0, stack
        assert clean.flaps == 0 and clean.route_churn == 0, stack
        assert clean.goodput == 1.0, stack
    # the aggressiveness ordering: MTP trips first, and strictly earlier
    # than both BGP variants on this grid
    assert thresholds["mtp"] is not None
    for other in ("bgp", "bgp-bfd"):
        assert (thresholds[other] is None
                or thresholds[other] > thresholds["mtp"]), other
    # once tripped, MTP keeps paying: FPs and churn at the trip point
    tripped = by_point[("mtp", thresholds["mtp"])]
    assert tripped.flaps > 0 and tripped.route_churn > 0
    # the liveness-enabled stacks: zero false positives through 20%
    # loss (the shipped guarantee is the 2-10% gray band; 30% is beyond
    # the design point — mtp-adaptive may trip there, an order of
    # magnitude more gently than baseline mtp)
    for stack in ADAPTIVE_STACKS:
        t = thresholds[stack]
        assert t is None or t >= 0.3, (stack, t)
        for rate in RATES:
            if rate <= 0.2:
                assert by_point[(stack, rate)].false_positives == 0, \
                    (stack, rate)
    at_30 = by_point[("mtp-adaptive", 0.3)]
    assert at_30.route_churn <= by_point[("mtp", 0.3)].route_churn // 4
    # a baseline detector that never tripped leaves flows on the gray
    # link, so goodput tracks the offered loss (the adaptive stacks are
    # exempt: they *depreference* the degraded link without churn, so
    # goodput can recover with zero table rewrites)...
    for r in results:
        if (r.stack in STACKS and r.loss > 0
                and r.false_positives == 0 and r.route_churn == 0):
            assert r.goodput < 1.0, (r.stack, r.loss)
    # ...while a tripped one routes around it: the false positive trades
    # churn for restored goodput (bgp-bfd at 0.3 beats plain bgp, which
    # keeps hashing onto the lossy link)
    assert by_point[("bgp-bfd", 0.3)].goodput > \
        by_point[("bgp", 0.3)].goodput
