"""Engine performance trajectory: the BENCH_engine.json generator.

Profiles the event-engine hot loop and records a machine-readable
performance trajectory for the timer-wheel fast path:

* **micro** — scheduler-only workloads on both backends (``wheel`` and
  the legacy ``heap``), measured as best-of-N ``time.process_time``
  throughput.  The headline workload is ``sync_timers``: every port
  re-arms a periodic timer *in phase*, which is exactly the fabric
  hello/keepalive pattern that dominates converged-fabric simulation.
* **fabric** — 8/16/32-PoD folded-Clos fabrics through the paper's
  TC1-TC4 failure cases: wall time per scenario, events processed,
  events/sec and peak event-queue depth.
* **baseline_pre_change** — frozen throughput of the pre-wheel engine
  (the heap scheduler with dataclass events and eager tracing) measured
  on the same host with the same workloads, so the speedup trajectory
  survives the old code's deletion.

Run::

    PYTHONPATH=src python benchmarks/bench_engine.py [--quick] [--profile]

Writes ``BENCH_engine.json`` at the repository root.  ``--profile``
additionally prints the cProfile top of the dispatch hot loop.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import platform
import pstats
import sys
import time
from pathlib import Path

from repro.sim.engine import BACKENDS, WHEEL_BACKEND, Simulator
from repro.topology.clos import ClosParams
from repro.harness.experiments import run_failure_experiment

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_engine.json"

# ----------------------------------------------------------------------
# Frozen pre-change baseline: the seed engine (heap scheduler, dataclass
# events, eager tracing) on these exact workloads, best-of-5
# process_time on the reference 1-core host.  Regenerating the file does
# NOT remeasure these — the old engine no longer exists in the tree.
# ----------------------------------------------------------------------
BASELINE_PRE_CHANGE = {
    "engine": "pre-wheel heap scheduler (seed engine)",
    "method": "best-of-5 time.process_time, interleaved A/B on one host",
    "events_per_sec": {
        "sync_timers_1024": 205_494,
        "dispatch": 310_633,
        "churn": 110_594,
        "bfd_churn": 128_505,
        "flood": 147_895,
    },
}


# ----------------------------------------------------------------------
# micro workloads (scheduler-only; no protocols, no tracing)
# ----------------------------------------------------------------------
def bench_sync_timers(backend: str, n: int, ports: int = 1024) -> float:
    """The headline: every port fires a periodic timer *in phase* — the
    converged-fabric hello pattern (large same-tick batches)."""
    sim = Simulator(backend)
    schedule_after = sim.schedule_after

    def tick():
        schedule_after(10_000, tick)

    for _ in range(ports):
        schedule_after(10_000, tick)
    t0 = time.process_time()
    sim.run(max_events=n)
    return sim.events_processed / (time.process_time() - t0)


def bench_dispatch(backend: str, n: int) -> float:
    """Tight self-rescheduling timers: pure schedule+dispatch cost."""
    sim = Simulator(backend)
    schedule_after = sim.schedule_after

    def tick():
        schedule_after(7, tick)

    for i in range(64):
        schedule_after(i, tick)
    t0 = time.process_time()
    sim.run(max_events=n)
    return sim.events_processed / (time.process_time() - t0)


def bench_churn(backend: str, n: int, ports: int = 512) -> float:
    """Staggered keepalive re-arm: every hello cancels and replaces a
    far-out dead timer, so tombstones accumulate in the queue."""
    sim = Simulator(backend)
    schedule_after = sim.schedule_after

    def expire():
        pass

    def mk(i):
        holder = [None]

        def keepalive():
            h = holder[0]
            if h is not None:
                h.cancel()
            holder[0] = schedule_after(3_000_000, expire)
            schedule_after(1000 + i, keepalive)

        return keepalive

    for i in range(ports):
        schedule_after(i, mk(i))
    t0 = time.process_time()
    sim.run(max_events=n)
    return sim.events_processed / (time.process_time() - t0)


def bench_bfd_churn(backend: str, n: int, ports: int = 512) -> float:
    """Hello every 10ms, dead timer 30ms out, reset on every hello —
    the BFD reachable-state pattern; tombstones actually traverse the
    queue before being discarded."""
    sim = Simulator(backend)
    schedule_after = sim.schedule_after

    def expire():
        pass

    def mk(i):
        holder = [None]

        def hello():
            h = holder[0]
            if h is not None:
                h.cancel()
            holder[0] = schedule_after(30_000, expire)
            schedule_after(10_000 + i, hello)

        return hello

    for i in range(ports):
        schedule_after(i, mk(i))
    t0 = time.process_time()
    sim.run(max_events=n)
    return sim.events_processed / (time.process_time() - t0)


def bench_flood(backend: str, n: int) -> float:
    """Adversarial for the wheel: uniformly random far-horizon inserts
    (maximal cascading, minimal batching)."""
    import random

    sim = Simulator(backend)
    rng = random.Random(7)
    cb = (lambda: None)
    t0 = time.process_time()
    for _ in range(n):
        sim.schedule_at(rng.randrange(0, 10_000_000), cb)
    sim.run()
    return n / (time.process_time() - t0)


MICRO = {
    "sync_timers_1024": (bench_sync_timers, 200_000),
    "dispatch": (bench_dispatch, 150_000),
    "churn": (bench_churn, 250_000),
    "bfd_churn": (bench_bfd_churn, 200_000),
    "flood": (bench_flood, 150_000),
}


def run_micro(repeats: int, scale: float) -> dict:
    out: dict[str, dict] = {}
    for name, (fn, n) in MICRO.items():
        n = max(10_000, int(n * scale))
        best = {b: 0.0 for b in BACKENDS}
        # interleave backends so host noise hits both legs equally
        for _ in range(repeats):
            for backend in BACKENDS:
                best[backend] = max(best[backend], fn(backend, n))
        entry = {
            "events": n,
            "events_per_sec": {b: round(best[b]) for b in BACKENDS},
        }
        base = BASELINE_PRE_CHANGE["events_per_sec"].get(name)
        if base:
            entry["speedup_vs_pre_change"] = round(
                best[WHEEL_BACKEND] / base, 2)
        out[name] = entry
        print(f"  {name:18s} " + "  ".join(
            f"{b} {best[b]:>10,.0f}/s" for b in BACKENDS)
            + (f"  ({entry.get('speedup_vs_pre_change', '-')}x vs seed)"
               if base else ""))
    return out


# ----------------------------------------------------------------------
# fabric grid: PoD scale x failure case
# ----------------------------------------------------------------------
def run_fabric(pods_list, cases) -> list[dict]:
    rows = []
    for pods in pods_list:
        params = ClosParams(num_pods=pods)
        for case in cases:
            t0 = time.perf_counter()
            c0 = time.process_time()
            result, world = run_failure_experiment(
                params, "mtp", case, seed=0, return_world=True)
            cpu_s = time.process_time() - c0
            wall_s = time.perf_counter() - t0
            events = world.sim.events_processed
            rows.append({
                "pods": pods,
                "routers": params.num_routers,
                "case": case,
                "wall_s": round(wall_s, 4),
                "cpu_s": round(cpu_s, 4),
                "events": events,
                "events_per_sec": round(events / cpu_s) if cpu_s else None,
                "peak_queue_depth": world.sim.peak_queue_depth,
                "convergence_us": result.convergence_us,
            })
            print(f"  {pods:>2} PoD {case}: {wall_s:7.3f}s wall  "
                  f"{events:>8,} events  "
                  f"{rows[-1]['events_per_sec']:>8,}/s  "
                  f"peak depth {world.sim.peak_queue_depth:,}")
    return rows


def profile_hot_loop() -> None:
    prof = cProfile.Profile()
    prof.enable()
    bench_dispatch(WHEEL_BACKEND, 300_000)
    prof.disable()
    stats = pstats.Stats(prof, stream=sys.stdout)
    stats.sort_stats("cumulative").print_stats(12)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="1 repeat, smaller workloads, fabric up to 8 PoD")
    ap.add_argument("--profile", action="store_true",
                    help="print the cProfile top of the dispatch hot loop")
    ap.add_argument("--output", type=Path, default=OUTPUT)
    args = ap.parse_args(argv)

    repeats = 1 if args.quick else 4
    scale = 0.25 if args.quick else 1.0
    pods_list = (2, 8) if args.quick else (8, 16, 32)
    cases = ("TC1", "TC2", "TC3", "TC4")

    print("engine microbenchmarks "
          f"(best of {repeats}, process_time):")
    micro = run_micro(repeats, scale)
    print("fabric grid (mtp, seed 0):")
    fabric = run_fabric(pods_list, cases)

    if args.profile:
        print("\ndispatch hot-loop profile (wheel backend):")
        profile_hot_loop()

    headline = micro["sync_timers_1024"]
    doc = {
        "schema": "bench-engine/1",
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "baseline_pre_change": BASELINE_PRE_CHANGE,
        "micro": micro,
        "fabric": fabric,
        "headline": {
            "workload": "sync_timers_1024",
            "events_per_sec": headline["events_per_sec"][WHEEL_BACKEND],
            "speedup_vs_pre_change": headline.get("speedup_vs_pre_change"),
        },
    }
    args.output.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\nwrote {args.output} "
          f"(headline {doc['headline']['speedup_vs_pre_change']}x on "
          f"{doc['headline']['workload']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
