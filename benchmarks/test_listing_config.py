"""Listings 1 & 2 — configuration cost.

Paper's point: a BGP fabric needs a per-router FRR configuration whose
size grows with the router's interface count ("as the number of BGP
routers increase, the configuration required will increase linearly"),
while MR-MTP configures the *whole* DCN with one small JSON naming each
node's tier and the ToRs' rack ports.
"""

from __future__ import annotations

import pytest

from repro.topology.clos import ClosParams, four_pod_params, two_pod_params
from repro.harness.experiments import StackKind, run_config_cost_experiment

from conftest import emit


def test_listing_config_cost(benchmark, results_dir):
    shapes = [("2-PoD", two_pod_params()), ("4-PoD", four_pod_params()),
              ("8-PoD", ClosParams(num_pods=8))]

    def measure():
        out = {}
        for label, params in shapes:
            for kind in (StackKind.MTP, StackKind.BGP):
                out[(label, kind)] = run_config_cost_experiment(params, kind)
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    for label, _ in shapes:
        for kind in (StackKind.MTP, StackKind.BGP):
            r = results[(label, kind)]
            rows.append([label, kind.value, r.routers, r.documents,
                         r.total_lines, f"{r.lines_per_router:.1f}"])
    emit(results_dir, "listing_config_cost",
         "Listings 1/2 — configuration cost",
         ["fabric", "stack", "routers", "documents", "total lines",
          "lines/router"], rows)

    for label, _ in shapes:
        mtp = results[(label, StackKind.MTP)]
        bgp = results[(label, StackKind.BGP)]
        # one document for the whole fabric vs one per router
        assert mtp.documents == 1
        assert bgp.documents == bgp.routers
        assert mtp.total_lines < bgp.total_lines

    # BGP grows linearly with routers; MR-MTP grows only by the new
    # leaves' entries in the JSON
    bgp_growth = (results[("8-PoD", StackKind.BGP)].total_lines
                  / results[("2-PoD", StackKind.BGP)].total_lines)
    mtp_growth = (results[("8-PoD", StackKind.MTP)].total_lines
                  / results[("2-PoD", StackKind.MTP)].total_lines)
    assert bgp_growth > 3.0
    assert mtp_growth < bgp_growth


def test_listing2_json_shape(benchmark):
    """The rendered MR-MTP config carries exactly the paper's fields."""
    from repro.topology.clos import build_folded_clos
    from repro.core.config import MtpGlobalConfig
    import json

    def build():
        topo = build_folded_clos(four_pod_params())
        return MtpGlobalConfig.from_topology(topo)

    config = benchmark.pedantic(build, rounds=1, iterations=1)
    doc = json.loads(config.render_json())
    topology = doc["topology"]
    assert len(topology["leaves"]) == 8
    assert set(topology["leavesNetworkPortDict"]) == set(topology["leaves"])
    assert all(v.startswith("eth") for v in
               topology["leavesNetworkPortDict"].values())
    # spines appear with their tier, nothing else is needed
    assert all(tier in (2, 3) for tier in topology["tiers"].values())
