"""Figs. 9 & 10 — keep-alive message overhead on one fabric link.

Paper's capture arithmetic: a BFD control packet is 66 bytes at L2, a
BGP KEEPALIVE 85 bytes (plus 66-byte TCP ACKs), while the MR-MTP
keepalive carries a single byte (15 B unpadded at L2) — and any MR-MTP
message doubles as a keepalive, so data traffic suppresses hellos
entirely (Fig. 10 discussion).
"""

from __future__ import annotations

import pytest

from repro.sim.units import SECOND
from repro.topology.clos import two_pod_params
from repro.harness.experiments import StackKind, run_keepalive_experiment

from conftest import emit

WINDOW_US = 5 * SECOND


def test_fig9_10_keepalive_overhead(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: {
            kind: run_keepalive_experiment(two_pod_params(), kind,
                                           window_us=WINDOW_US)
            for kind in (StackKind.MTP, StackKind.BGP, StackKind.BGP_BFD)
        },
        rounds=1, iterations=1,
    )
    rows = []
    for kind, b in results.items():
        rows.append([
            kind.value,
            b.bgp_keepalive_count, b.bgp_keepalive_bytes,
            b.bfd_count, b.bfd_bytes,
            b.tcp_ack_count, b.tcp_ack_bytes,
            b.mtp_keepalive_count, b.mtp_keepalive_bytes,
            f"{b.bytes_per_second:.0f}",
        ])
    emit(results_dir, "fig9_10_keepalive",
         f"Figs. 9/10 — keepalive traffic on one ToR-agg link over "
         f"{WINDOW_US // SECOND} s",
         ["stack", "bgpKA#", "bgpKA B", "bfd#", "bfd B",
          "ack#", "ack B", "mtpKA#", "mtpKA B", "B/s"],
         rows)

    mtp = results[StackKind.MTP]
    bgp = results[StackKind.BGP]
    bfd = results[StackKind.BGP_BFD]

    # per-packet sizes straight from the paper's captures
    assert bfd.bfd_count > 0 and bfd.bfd_bytes / bfd.bfd_count == 66
    assert bgp.bgp_keepalive_count > 0
    assert bgp.bgp_keepalive_bytes / bgp.bgp_keepalive_count == 85
    assert mtp.mtp_keepalive_count > 0
    assert mtp.mtp_keepalive_bytes / mtp.mtp_keepalive_count == 15

    # The apples-to-apples comparison is against BGP+BFD — the stack
    # configured for fast detection.  MR-MTP detects 3x faster still
    # (100 ms vs 300 ms) at a third of the liveness byte rate.  (Plain
    # BGP's 1 s keepalives emit fewer bytes per second, but it detects
    # failures 30x slower — the paper's Fig. 4/7/8 trade-off.)
    assert mtp.bytes_per_second < bfd.bytes_per_second / 2
    # enabling BFD adds traffic on top of BGP's keepalives
    assert bfd.bytes_per_second > bgp.bytes_per_second
    # per-detection-window cost: bytes emitted during one detection time
    # (100 ms MTP / 300 ms BFD / 3 s plain BGP) — MR-MTP wins outright
    mtp_window = mtp.bytes_per_second * 0.100
    bfd_window = bfd.bytes_per_second * 0.300
    bgp_window = bgp.bytes_per_second * 3.0
    assert mtp_window < bfd_window < bgp_window
    # nothing from the other stack's protocols leaks into each capture
    assert mtp.bgp_keepalive_count == mtp.bfd_count == mtp.tcp_ack_count == 0
    assert bgp.mtp_keepalive_count == 0 and bgp.bfd_count == 0


def test_fig10_data_traffic_suppresses_mtp_hellos(benchmark):
    """'All MR-MTP messages can serve as keep-alive messages': a loaded
    link transmits (nearly) no explicit hellos."""
    from repro.harness.experiments import build_and_converge
    from repro.net.capture import Capture
    from repro.harness.metrics import keepalive_overhead
    from repro.traffic.generator import ReceiverAnalyzer, TrafficSender
    from repro.harness.pathtrace import find_crossing_flow

    def measure():
        world, topo, dep = build_and_converge(two_pod_params(), StackKind.MTP)
        tor, agg = topo.tors[0][0][0], topo.aggs[0][0][0]
        src = topo.first_server_of(tor)
        dst = topo.first_server_of(topo.tors[0][1][1])
        src_port = find_crossing_flow(dep, src, dst, tor, agg)
        link = world.find_link(tor, agg)
        capture = Capture()
        capture.attach((link.end_a, link.end_b))
        analyzer = ReceiverAnalyzer(dep.servers[dst].udp)
        sender = TrafficSender(dep.servers[src].udp, topo.server_address(dst),
                               src_port=src_port, gap_us=10_000)  # 100 pps
        since = world.sim.now
        sender.start(count=500)  # 5 s of traffic
        world.run_for(5 * SECOND)
        return keepalive_overhead(capture, since, world.sim.now)

    breakdown = benchmark.pedantic(measure, rounds=1, iterations=1)
    # idle would be ~100/s on the two directions; loaded (uplink side)
    # must drop well below — only the ToR-bound direction still hellos
    assert breakdown.mtp_keepalive_count < 5 * 100 * 0.75
