"""Extension — congestion loss (incast) vs failure loss.

The paper measures *failure* loss only; with finite egress queues the
simulator also reproduces *congestion* loss, and shows the two are
orthogonal: an incast overload drops packets at the bottleneck queue
under both protocol stacks identically (the data plane is the same
hash-ECMP substrate), while failure loss differs by protocol timer.
"""

from __future__ import annotations

import pytest

from repro.sim.units import SECOND
from repro.topology.clos import ClosParams
from repro.harness.experiments import StackKind, build_and_converge
from repro.traffic.generator import ReceiverAnalyzer, TrafficSender

from conftest import emit

# 100 Mb/s fabric so a handful of servers can congest a rack downlink
PARAMS = ClosParams(num_pods=2, bandwidth_bps=100_000_000)
QUEUE_BYTES = 64 * 1024


def run_incast(kind: StackKind, n_senders: int, rate_mbps: float):
    world, topo, dep = build_and_converge(PARAMS, kind)
    # receiver: first server of the last ToR
    dst_tor = topo.tors[0][-1][-1]
    dst = topo.first_server_of(dst_tor)
    dst_ip = topo.server_address(dst)
    # shrink the bottleneck queue (ToR -> server link)
    bottleneck = world.find_link(dst_tor, dst)
    bottleneck.queue_bytes = QUEUE_BYTES
    analyzer = ReceiverAnalyzer(dep.servers[dst].udp)
    # senders: one server per other ToR, round-robin
    src_tors = [t for t in topo.all_tors() if t != dst_tor]
    payload = 1000
    wire_bits = (payload + 42) * 8
    gap_us = int(wire_bits / rate_mbps)  # Mb/s == bits/us
    duration = 2 * SECOND
    senders = []
    for i in range(n_senders):
        src = topo.first_server_of(src_tors[i % len(src_tors)])
        gen = TrafficSender(dep.servers[src].udp, dst_ip,
                            src_port=42000 + i, payload_bytes=payload,
                            gap_us=gap_us + 7 * i)  # de-phased
        gen.start(count=duration // (gap_us + 7 * i), at=world.sim.now + 53 * i)
        senders.append(gen)
    world.run_for(duration + SECOND)
    sent = sum(g.sent for g in senders)
    return sent, analyzer.received, bottleneck.frames_dropped_queue


def test_ext_incast_congestion(benchmark, results_dir):
    cases = [(1, 50.0), (2, 50.0), (3, 50.0), (4, 50.0)]

    def measure():
        out = {}
        for n, rate in cases:
            for kind in (StackKind.MTP, StackKind.BGP):
                out[(n, kind)] = run_incast(kind, n, rate)
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    for (n, kind), (sent, received, drops) in sorted(
            results.items(), key=lambda kv: (kv[0][0], kv[0][1].value)):
        offered = n * 50.0
        rows.append([n, f"{offered:.0f}", kind.value, sent,
                     sent - received, drops])
    emit(results_dir, "ext_incast_congestion",
         "Extension — incast onto one 100 Mb/s rack link (64 KiB queue)",
         ["senders", "offered Mb/s", "stack", "sent", "lost", "queue drops"],
         rows)

    for kind in (StackKind.MTP, StackKind.BGP):
        # below capacity: no loss; above: loss grows with offered load
        assert results[(1, kind)][0] - results[(1, kind)][1] == 0, kind
        losses = [results[(n, kind)][0] - results[(n, kind)][1]
                  for n, _ in cases]
        assert losses[-1] > losses[1] >= 0, kind
        assert results[(4, kind)][2] > 0, kind
    # congestion loss is protocol-agnostic: MTP within ~25% of BGP
    mtp_loss = results[(4, StackKind.MTP)][0] - results[(4, StackKind.MTP)][1]
    bgp_loss = results[(4, StackKind.BGP)][0] - results[(4, StackKind.BGP)][1]
    assert mtp_loss == pytest.approx(bgp_loss, rel=0.25)
