"""Extension — total on-the-wire overhead per delivered payload byte.

The paper's section IX promises "overhead calculations of using the
MR-MTP header for every IP packet and ... due to all protocols such as
BGP, TCP, BFD and UDP".  This bench does exactly that calculation: a
fixed workload crosses each fabric while every link is captured; we
report fabric bytes-on-wire per delivered payload byte, split into data
and control.

MR-MTP pays a ~5-byte encapsulation header per packet but runs no ARP,
no TCP/UDP control plane and 15-byte keepalives; BGP+BFD forwards IP
natively but pays 66-85-byte keepalive/ACK/BFD traffic on every link
continuously.
"""

from __future__ import annotations

import pytest

from repro.sim.units import SECOND
from repro.topology.clos import two_pod_params
from repro.harness.experiments import StackKind, build_and_converge
from repro.net.capture import Capture
from repro.stack.ethernet import ETHERTYPE_MTP
from repro.stack.ipv4 import Ipv4Packet
from repro.core.messages import MtpData
from repro.traffic.generator import ReceiverAnalyzer, TrafficSender

from conftest import emit

PAYLOAD = 1000
COUNT = 2000
WINDOW_US = 5 * SECOND


def classify(frame) -> str:
    payload = frame.payload
    if frame.ethertype == ETHERTYPE_MTP:
        return "data" if isinstance(payload, MtpData) else "control"
    if isinstance(payload, Ipv4Packet):
        inner = payload.payload
        from repro.stack.udp import UdpDatagram
        from repro.traffic.generator import SeqPayload

        if isinstance(inner, UdpDatagram) and isinstance(inner.payload,
                                                         SeqPayload):
            return "data"
    return "control"


def run_workload(kind: StackKind):
    world, topo, dep = build_and_converge(two_pod_params(), kind)
    capture = Capture()
    for link in world.links:
        if link.end_a.node.tier >= 1 and link.end_b.node.tier >= 1:
            capture.attach((link.end_a,))
            capture.attach((link.end_b,))
    src = topo.first_server_of(topo.tors[0][0][0])
    dst = topo.first_server_of(topo.tors[0][1][1])
    analyzer = ReceiverAnalyzer(dep.servers[dst].udp)
    sender = TrafficSender(dep.servers[src].udp, topo.server_address(dst),
                           payload_bytes=PAYLOAD, gap_us=2000)
    sender.start(count=COUNT)
    world.run_for(WINDOW_US)
    assert analyzer.received == COUNT
    data_bytes = 0
    control_bytes = 0
    for rec in capture.records:
        if rec.direction.value != "tx":
            continue
        if classify(rec.frame) == "data":
            data_bytes += rec.wire_size
        else:
            control_bytes += rec.wire_size
    delivered_payload = COUNT * PAYLOAD
    return data_bytes, control_bytes, delivered_payload


def test_ext_dataplane_overhead(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: {kind: run_workload(kind)
                 for kind in (StackKind.MTP, StackKind.BGP,
                              StackKind.BGP_BFD)},
        rounds=1, iterations=1,
    )
    rows = []
    for kind, (data, control, payload) in results.items():
        rows.append([
            kind.value, payload, data, control,
            f"{(data + control) / payload:.4f}",
            f"{data / payload:.4f}",
        ])
    emit(results_dir, "ext_dataplane_overhead",
         f"Extension — fabric bytes per delivered payload byte "
         f"({COUNT} x {PAYLOAD} B over {WINDOW_US // SECOND} s)",
         ["stack", "payload B", "data B", "control B",
          "total/payload", "data/payload"], rows)

    mtp_data, mtp_ctrl, payload = results[StackKind.MTP]
    bgp_data, bgp_ctrl, _ = results[StackKind.BGP]
    bfd_data, bfd_ctrl, _ = results[StackKind.BGP_BFD]

    # data-plane: each packet crosses 4 fabric links, paying the 5-byte
    # MR-MTP encapsulation header on each -> exactly 20 B/packet extra
    per_packet_delta = (mtp_data - bgp_data) / COUNT
    assert per_packet_delta == 5 * 4, per_packet_delta
    # control plane: MR-MTP's keepalives cost less than BGP+BFD's suite
    assert mtp_ctrl < bfd_ctrl
    # and the *total* overhead favors MR-MTP against the
    # fast-detection-equivalent stack
    assert mtp_data + mtp_ctrl < bfd_data + bfd_ctrl
