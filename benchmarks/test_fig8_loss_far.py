"""Fig. 8 — packet loss, traffic sender *away from* the failure point.

The mirror image of Fig. 7: traffic flows from the far rack toward the
rack adjoining the failure, so the lossy cases flip — at TC1/TC3 the
routers forwarding *down* toward the failure are unaware until their
dead/hold timer, while TC2/TC4 recover within the update cascade.
"""

from __future__ import annotations

import pytest

from repro.topology.clos import four_pod_params, two_pod_params
from repro.harness.experiments import StackKind, run_packet_loss_experiment

from conftest import ALL_CASES, emit

STACKS = (StackKind.MTP, StackKind.BGP, StackKind.BGP_BFD)
RATE_PPS = 1000


@pytest.mark.parametrize("pods,params_fn", [(2, two_pod_params),
                                            (4, four_pod_params)])
def test_fig8_loss_sender_far(benchmark, results_dir, pods, params_fn):
    results = benchmark.pedantic(
        lambda: {
            (kind, case): run_packet_loss_experiment(
                params_fn(), kind, case, direction="far", rate_pps=RATE_PPS)
            for kind in STACKS for case in ALL_CASES
        },
        rounds=1, iterations=1,
    )
    rows = [
        [kind.value] + [results[(kind, case)].lost for case in ALL_CASES]
        for kind in STACKS
    ]
    emit(results_dir, f"fig8_loss_far_{pods}pod",
         f"Fig. 8 — packets lost, sender far from failure, {pods}-PoD "
         f"({RATE_PPS} pps)",
         ["stack"] + list(ALL_CASES), rows)

    lost = {k: results[k].lost for k in results}
    for kind in STACKS:
        # the lossy cases flipped relative to Fig. 7
        assert lost[(kind, "TC1")] > lost[(kind, "TC2")], kind
        assert lost[(kind, "TC3")] > lost[(kind, "TC4")], kind
        # cascade-recovered cases lose only a handful of packets
        assert lost[(kind, "TC2")] <= 10, kind
        assert lost[(kind, "TC4")] <= 10, kind
    for case in ("TC1", "TC3"):
        mtp, bfd, bgp = (lost[(StackKind.MTP, case)],
                         lost[(StackKind.BGP_BFD, case)],
                         lost[(StackKind.BGP, case)])
        assert mtp < bfd < bgp, (case, mtp, bfd, bgp)
        assert mtp <= 130, case


def test_fig8_bfd_cuts_loss_by_large_factor(benchmark):
    """Paper VII.E: enabling BFD has a profound effect on far-side loss."""
    def measure():
        bgp = run_packet_loss_experiment(two_pod_params(), StackKind.BGP,
                                         "TC1", direction="far")
        bfd = run_packet_loss_experiment(two_pod_params(), StackKind.BGP_BFD,
                                         "TC1", direction="far")
        return bgp, bfd

    bgp, bfd = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert bfd.lost * 3 <= bgp.lost
