"""Ablations — the design choices DESIGN.md calls out.

Each ablation flips one of MR-MTP's (or the baseline's) mechanisms and
measures the consequence the paper argues for:

* Quick-to-Detect: dead timer at 2x the hello interval vs the classical
  3x/4x multipliers — remote-detection convergence scales directly.
* Slow-to-Accept: 3 consecutive hellos to re-accept vs immediate
  acceptance — a flapping interface causes repeated update storms when
  acceptance is immediate.
* MRAI: BGP's MinRouteAdvertisementInterval delays withdrawal cascades.
* BFD interval: detection (and hence convergence) is detect_mult x tx.
"""

from __future__ import annotations

import pytest

from repro.sim.units import MILLISECOND, SECOND
from repro.bfd.session import BfdTimers
from repro.bgp.config import BgpTimers
from repro.core.config import MtpTimers
from repro.topology.clos import two_pod_params
from repro.harness.experiments import (
    StackKind,
    StackTimers,
    build_and_converge,
    run_failure_experiment,
)

from conftest import emit


def test_abl_quick_to_detect(benchmark, results_dir):
    """Dead-timer multiplier sweep: convergence for the remote-detection
    case TC1 tracks multiplier x hello."""
    multipliers = (2, 3, 4)

    def measure():
        out = {}
        for mult in multipliers:
            timers = StackTimers(mtp=MtpTimers(
                hello_us=50 * MILLISECOND,
                dead_us=mult * 50 * MILLISECOND,
            ))
            out[mult] = run_failure_experiment(
                two_pod_params(), StackKind.MTP, "TC1", timers=timers)
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[m, f"{results[m].convergence_ms:.2f}"] for m in multipliers]
    emit(results_dir, "abl_quick_to_detect",
         "Ablation — dead-timer multiplier (hello 50 ms), MR-MTP TC1",
         ["multiplier", "conv ms"], rows,
         note="the paper's Quick-to-Detect is multiplier 2: one missed hello")

    convs = [results[m].convergence_us for m in multipliers]
    assert convs == sorted(convs)
    # each extra hello interval costs ~50 ms of convergence
    assert convs[1] - convs[0] == pytest.approx(50 * MILLISECOND,
                                                abs=15 * MILLISECOND)
    assert convs[2] - convs[1] == pytest.approx(50 * MILLISECOND,
                                                abs=15 * MILLISECOND)


def test_abl_slow_to_accept(benchmark, results_dir):
    """Flapping interface with immediate acceptance vs Slow-to-Accept:
    dampening suppresses the repeated update storms."""
    from repro.harness.convergence import ConvergenceMonitor
    from repro.harness.failures import FailureInjector

    def run(accept_hellos: int):
        timers = StackTimers(mtp=MtpTimers(accept_hellos=accept_hellos))
        world, topo, dep = build_and_converge(
            two_pod_params(), StackKind.MTP, timers=timers)
        case = topo.failure_cases()["TC2"]
        monitor = ConvergenceMonitor(world, dep.update_categories())
        injector = FailureInjector(world)
        monitor.arm()
        # 8 flaps: 120 ms down (exceeds the dead timer, kills the
        # neighbor) and 100 ms up (admits at most two 50 ms hellos —
        # below the Slow-to-Accept threshold, but plenty for immediate
        # acceptance)
        injector.flap_interface(case.node, case.interface,
                                period_us=120 * MILLISECOND, count=8,
                                up_period_us=100 * MILLISECOND)
        world.run_for(8 * 220 * MILLISECOND + SECOND)
        ups = sum(1 for r in world.trace.select(category="mtp.neighbor",
                                                since=monitor.armed_at)
                  if "up (tier" in r.message)
        return monitor.update_bytes, monitor.update_count, ups

    def measure():
        return {n: run(n) for n in (1, 3)}

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[n, *results[n]] for n in (1, 3)]
    emit(results_dir, "abl_slow_to_accept",
         "Ablation — Slow-to-Accept under a flapping interface (8 flaps)",
         ["accept hellos", "update bytes", "update msgs", "neighbor ups"],
         rows)

    eager_bytes, eager_msgs, eager_ups = results[1]
    damped_bytes, damped_msgs, damped_ups = results[3]
    # immediate acceptance churns: each flap re-accepts and re-propagates
    assert eager_ups > damped_ups
    assert eager_bytes > damped_bytes
    assert eager_msgs >= 2 * damped_msgs


def test_abl_mrai(benchmark, results_dir):
    """MRAI sweep: spacing UPDATEs delays the withdrawal cascade (the
    paper's section IV.A points at MRAI as a BGP recovery cost)."""
    mrais_ms = (0, 100, 500)

    def measure():
        out = {}
        for mrai in mrais_ms:
            timers = StackTimers(bgp=BgpTimers(mrai_us=mrai * MILLISECOND))
            out[mrai] = run_failure_experiment(
                two_pod_params(), StackKind.BGP, "TC2", timers=timers)
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[m, f"{results[m].convergence_ms:.2f}",
             results[m].control_bytes] for m in mrais_ms]
    emit(results_dir, "abl_mrai",
         "Ablation — BGP MRAI sweep, TC2 (local detection)",
         ["MRAI ms", "conv ms", "ctrl B"], rows)

    convs = [results[m].convergence_us for m in mrais_ms]
    assert convs[0] < convs[1] < convs[2]
    # with MRAI=m, the 3-hop cascade costs roughly 3m extra
    assert convs[2] - convs[0] >= 2 * 500 * MILLISECOND


def test_abl_bfd_interval(benchmark, results_dir):
    """BFD tx-interval sweep: TC1 convergence ~ detect_mult x interval."""
    intervals_ms = (50, 100, 200)

    def measure():
        out = {}
        for tx in intervals_ms:
            timers = StackTimers(bfd=BfdTimers(tx_interval_us=tx * MILLISECOND))
            out[tx] = run_failure_experiment(
                two_pod_params(), StackKind.BGP_BFD, "TC1", timers=timers)
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[tx, f"{results[tx].convergence_ms:.2f}"] for tx in intervals_ms]
    emit(results_dir, "abl_bfd_interval",
         "Ablation — BFD transmit interval (mult 3), BGP+BFD TC1",
         ["tx ms", "conv ms"], rows)

    for tx in intervals_ms:
        conv = results[tx].convergence_us
        assert conv <= 3 * tx * MILLISECOND + 150 * MILLISECOND
    convs = [results[tx].convergence_us for tx in intervals_ms]
    assert convs == sorted(convs)


def test_abl_hello_interval(benchmark, results_dir):
    """Timer tuning (paper section IX): the hello interval trades
    availability (TC1 convergence ~ 2 x hello) against keepalive
    bandwidth (~ 2 x 15 B / hello per link)."""
    from repro.harness.experiments import run_keepalive_experiment
    from repro.sim.units import SECOND

    hellos_ms = (25, 50, 100, 200)

    def measure():
        out = {}
        for hello in hellos_ms:
            timers = StackTimers(mtp=MtpTimers(
                hello_us=hello * MILLISECOND,
                dead_us=2 * hello * MILLISECOND,
            ))
            conv = run_failure_experiment(
                two_pod_params(), StackKind.MTP, "TC1", timers=timers)
            ka = run_keepalive_experiment(
                two_pod_params(), StackKind.MTP, timers=timers,
                window_us=5 * SECOND)
            out[hello] = (conv.convergence_us, ka.bytes_per_second)
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[h, f"{conv / 1000:.2f}", f"{rate:.0f}"]
            for h, (conv, rate) in results.items()]
    emit(results_dir, "abl_hello_interval",
         "Ablation — MR-MTP hello interval (dead = 2 x hello), TC1",
         ["hello ms", "conv ms", "keepalive B/s"], rows,
         note="the paper runs 50 ms; FABRIC VM scheduling set the floor")

    convs = [results[h][0] for h in hellos_ms]
    rates = [results[h][1] for h in hellos_ms]
    assert convs == sorted(convs), "convergence grows with the interval"
    assert rates == sorted(rates, reverse=True), "bandwidth shrinks"
    # convergence is bounded by the dead timer (2 x hello) + cascade
    for hello in hellos_ms:
        assert results[hello][0] <= 2 * hello * MILLISECOND + 10_000


def test_abl_load_balancing_spray_vs_hash(benchmark, results_dir):
    """Load-balancing design choice: the paper's flow hash keeps packets
    of a flow on one path (zero reordering); per-packet spraying spreads
    load perfectly evenly but reorders — which is why MR-MTP (like ECMP)
    hashes."""
    from repro.harness.convergence import converge_from_cold
    from repro.harness.deploy import deploy_mtp
    from repro.net.world import World
    from repro.topology.clos import build_folded_clos
    from repro.traffic.generator import ReceiverAnalyzer, TrafficSender

    def run(spray: bool):
        world = World(seed=17)
        topo = build_folded_clos(two_pod_params(), world=world)
        dep = deploy_mtp(topo, per_packet_spray=spray)
        dep.start()
        converge_from_cold(world, dep, dep.trees_complete)
        src_tor, dst_tor = topo.tors[0][0][0], topo.tors[0][1][1]
        # make the two planes' latencies differ (a queued/longer path),
        # so alternating packets across them can actually reorder
        slow = world.find_link(src_tor, topo.aggs[0][0][1])
        slow.propagation_us = 200
        src = topo.first_server_of(src_tor)
        dst = topo.first_server_of(dst_tor)
        analyzer = ReceiverAnalyzer(dep.servers[dst].udp)
        # back-to-back large packets: path-length differences reorder
        sender = TrafficSender(dep.servers[src].udp,
                               topo.server_address(dst),
                               payload_bytes=1400, gap_us=0)
        sender.start(count=2000)
        world.run_for(2 * SECOND)
        report = analyzer.report(sender)
        # uplink utilization spread at the source ToR
        tor = topo.node(src_tor)
        up_counts = [tor.interfaces[p].counters.tx_frames
                     for p in ("eth1", "eth2")]
        return report, up_counts

    def measure():
        return {spray: run(spray) for spray in (False, True)}

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    for spray, (report, ups) in results.items():
        rows.append(["spray" if spray else "flow-hash", report.received,
                     report.lost, report.out_of_order, ups[0], ups[1]])
    emit(results_dir, "abl_load_balancing",
         "Ablation — per-packet spray vs flow hash (2000-packet burst)",
         ["policy", "received", "lost", "ooo", "uplink1", "uplink2"], rows)

    hash_report, hash_ups = results[False]
    spray_report, spray_ups = results[True]
    assert hash_report.out_of_order == 0
    assert spray_report.out_of_order > 0, \
        "alternating across unequal-latency paths must reorder"
    assert hash_report.lost == 0 and spray_report.lost == 0
    # spraying balances the burst almost perfectly across uplinks
    assert abs(spray_ups[0] - spray_ups[1]) <= 0.05 * sum(spray_ups)
    # the flow hash pins the whole burst to one uplink
    assert min(hash_ups) < 0.2 * sum(hash_ups)
