"""Fig. 6 — control overhead: bytes of update messages after a failure.

Paper's numbers: MR-MTP 120 B (2-PoD) -> 264 B (4-PoD); BGP 1023 B ->
2139 B; i.e. BGP costs several times more and both roughly double when
the fabric doubles.  Our reproduction lands at ~123/259 B for MR-MTP
(within a few bytes of the paper) and ~651/1395 B for BGP (same growth
factor; the absolute gap is ~5x rather than ~9x because our UPDATEs
carry only the mandatory attributes — see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.topology.clos import four_pod_params, two_pod_params
from repro.harness.experiments import StackKind, run_failure_experiment

from conftest import ALL_CASES, emit

STACKS = (StackKind.MTP, StackKind.BGP, StackKind.BGP_BFD)


def worst_case_overhead(params, kind):
    """The figure's headline value: the TC1/TC2 (ToR-link) cascade."""
    return run_failure_experiment(params, kind, "TC1").control_bytes


@pytest.mark.parametrize("pods,params_fn", [(2, two_pod_params),
                                            (4, four_pod_params)])
def test_fig6_control_overhead(benchmark, results_dir, pods, params_fn):
    results = benchmark.pedantic(
        lambda: {
            (kind, case): run_failure_experiment(params_fn(), kind, case)
            for kind in STACKS for case in ALL_CASES
        },
        rounds=1, iterations=1,
    )
    rows = [
        [kind.value]
        + [results[(kind, case)].control_bytes for case in ALL_CASES]
        + [results[(kind, "TC1")].update_count]
        for kind in STACKS
    ]
    emit(results_dir, f"fig6_control_overhead_{pods}pod",
         f"Fig. 6 — control overhead (bytes of updates), {pods}-PoD",
         ["stack"] + list(ALL_CASES) + ["msgs@TC1"], rows)

    ctrl = {k: results[k].control_bytes for k in results}
    for case in ALL_CASES:
        mtp = ctrl[(StackKind.MTP, case)]
        bgp = ctrl[(StackKind.BGP, case)]
        assert mtp < bgp, case
        assert bgp / max(mtp, 1) >= 3, (
            f"{case}: BGP should cost several times MR-MTP "
            f"({bgp} vs {mtp})"
        )
    # MR-MTP's ToR-link cascade sits near the paper's 120 B / 264 B
    expected = 120 if pods == 2 else 264
    measured = ctrl[(StackKind.MTP, "TC1")]
    assert abs(measured - expected) <= 0.2 * expected, (
        f"MR-MTP overhead {measured} B deviates >20% from the paper's "
        f"{expected} B"
    )


def test_fig6_doubling_the_fabric_roughly_doubles_overhead(benchmark):
    """Paper VII.C: 'slightly more than double' for both protocols."""
    def measure():
        return {
            kind: (worst_case_overhead(two_pod_params(), kind),
                   worst_case_overhead(four_pod_params(), kind))
            for kind in (StackKind.MTP, StackKind.BGP)
        }

    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    for kind, (small, large) in result.items():
        growth = large / small
        assert 1.8 <= growth <= 2.6, (kind, growth)
