"""Shared helpers for the figure-regeneration benchmarks.

Each ``test_fig*.py`` / ``test_listing*.py`` file regenerates one table
or figure from the paper's evaluation (section VII): it runs the full
experiment inside the benchmark, prints the paper-style rows, persists
them under ``benchmarks/results/`` and asserts the paper's qualitative
*shape* (who wins, by roughly what factor, where the crossovers are).
Absolute numbers differ from the paper — their substrate was the FABRIC
testbed, ours is a deterministic simulator — as documented in
EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness.report import render_table, save_result

RESULTS_DIR = Path(__file__).parent / "results"

# The paper's three stacks and four failure points.
ALL_CASES = ("TC1", "TC2", "TC3", "TC4")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    return RESULTS_DIR


@pytest.fixture(scope="session")
def jobs() -> int:
    """Worker processes for fan-out-capable drivers: ``REPRO_JOBS`` (CI
    sets 2), default 1 so benchmark timings stay comparable."""
    return int(os.environ.get("REPRO_JOBS", "1"))


def emit(results_dir: Path, name: str, title: str, columns, rows, note="") -> str:
    text = render_table(title, columns, rows, note=note)
    save_result(results_dir, name, text)
    print()
    print(text)
    return text
