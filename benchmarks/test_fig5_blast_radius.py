"""Fig. 5 — blast radius: routers that updated forwarding tables.

Paper's shape: MR-MTP touches far fewer routers than BGP; failures on
ToR-agg links (TC1/TC2) have a larger radius than agg-top links
(TC3/TC4); BFD does not change the radius (it only changes *when* the
same updates happen).  Our counter is precise — any router whose VID
table / FIB changed — so absolute values sit within ±1 of the paper's
prose counts (see EXPERIMENTS.md for the counting-rule discussion).
"""

from __future__ import annotations

import pytest

from repro.topology.clos import four_pod_params, two_pod_params
from repro.harness.experiments import StackKind, run_failure_experiment

from conftest import ALL_CASES, emit

STACKS = (StackKind.MTP, StackKind.BGP, StackKind.BGP_BFD)


@pytest.mark.parametrize("pods,params_fn", [(2, two_pod_params),
                                            (4, four_pod_params)])
def test_fig5_blast_radius(benchmark, results_dir, pods, params_fn):
    results = benchmark.pedantic(
        lambda: {
            (kind, case): run_failure_experiment(params_fn(), kind, case)
            for kind in STACKS for case in ALL_CASES
        },
        rounds=1, iterations=1,
    )
    rows = [
        [kind.value] + [results[(kind, case)].blast_radius
                        for case in ALL_CASES]
        for kind in STACKS
    ]
    emit(results_dir, f"fig5_blast_radius_{pods}pod",
         f"Fig. 5 — blast radius (routers updated), {pods}-PoD",
         ["stack"] + list(ALL_CASES), rows,
         note="counting rule: routers whose forwarding state changed "
              "after the failure (precise variant of the paper's count)")

    blast = {k: results[k].blast_radius for k in results}
    for case in ALL_CASES:
        # MR-MTP's radius never exceeds BGP's
        assert blast[(StackKind.MTP, case)] <= blast[(StackKind.BGP, case)], case
        # BFD does not change the blast radius
        assert blast[(StackKind.BGP, case)] == blast[(StackKind.BGP_BFD, case)], case
    for kind in STACKS:
        # ToR-agg failures touch more routers than agg-top failures
        assert blast[(kind, "TC1")] > blast[(kind, "TC3")], kind
        assert blast[(kind, "TC2")] > blast[(kind, "TC4")], kind
        # the two ends of the same link produce the same radius
        assert blast[(kind, "TC1")] == blast[(kind, "TC2")], kind
        assert blast[(kind, "TC3")] == blast[(kind, "TC4")], kind


def test_fig5_radius_grows_with_fabric(benchmark):
    """4-PoD radii exceed 2-PoD radii for TC1 (more ToRs to notify)."""
    def both():
        small = run_failure_experiment(two_pod_params(), StackKind.MTP, "TC1")
        large = run_failure_experiment(four_pod_params(), StackKind.MTP, "TC1")
        return small, large

    small, large = benchmark.pedantic(both, rounds=1, iterations=1)
    assert large.blast_radius > small.blast_radius
