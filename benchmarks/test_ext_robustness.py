"""Extension — exhaustive single-failure robustness sweep.

Beyond the paper's four hand-picked test cases: fail *every* fabric
interface (32 points in the 2-PoD), reconverge, and path-trace every
rack pair.  A folded-Clos keeps physical connectivity under any single
interface failure, so the sweep must find zero blackholes for both
protocol stacks — and it reports how much reconvergence "budget" each
stack needs for that to hold.
"""

from __future__ import annotations

import pytest

from repro.topology.clos import two_pod_params
from repro.harness.experiments import StackKind
from repro.harness.sweep import single_failure_sweep, summarize

from conftest import emit


@pytest.mark.parametrize("kind", [StackKind.MTP, StackKind.BGP,
                                  StackKind.BGP_BFD])
def test_ext_robustness_sweep(benchmark, results_dir, kind, jobs):
    results = benchmark.pedantic(
        lambda: single_failure_sweep(two_pod_params(), kind, jobs=jobs),
        rounds=1, iterations=1,
    )
    blackholes = sum(len(r.unreachable) for r in results)
    rows = [[kind.value, len(results),
             sum(r.pairs_checked for r in results), blackholes]]
    emit(results_dir, f"ext_robustness_{kind.name.lower()}",
         f"Extension — exhaustive single-failure sweep, 2-PoD, {kind.value}",
         ["stack", "failure points", "pair checks", "blackholes"], rows,
         note=summarize(results))
    assert blackholes == 0, summarize(results)
    assert len(results) == 32
