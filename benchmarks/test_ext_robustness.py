"""Extension — exhaustive single-failure robustness sweep.

Beyond the paper's four hand-picked test cases: fail *every* fabric
interface (32 points in the 2-PoD), reconverge, and path-trace every
rack pair.  A folded-Clos keeps physical connectivity under any single
interface failure, so the sweep must find zero blackholes for every
registered stack — the three paper stacks plus the registry-only
variants (per-packet spray, single-path BGP) — and it reports how much
reconvergence "budget" each stack needs for that to hold.
"""

from __future__ import annotations

import pytest

from repro.topology.clos import two_pod_params
from repro.stacks import get_stack
from repro.harness.sweep import single_failure_sweep, summarize

from conftest import emit

STACKS = ("mtp", "bgp", "bgp-bfd", "mtp-spray", "bgp-nomultipath")


@pytest.mark.parametrize("stack", STACKS)
def test_ext_robustness_sweep(benchmark, results_dir, stack, jobs):
    display = get_stack(stack).display
    results = benchmark.pedantic(
        lambda: single_failure_sweep(two_pod_params(), stack, jobs=jobs),
        rounds=1, iterations=1,
    )
    blackholes = sum(len(r.unreachable) for r in results)
    rows = [[display, len(results),
             sum(r.pairs_checked for r in results), blackholes]]
    emit(results_dir, f"ext_robustness_{stack.replace('-', '_')}",
         f"Extension — exhaustive single-failure sweep, 2-PoD, {display}",
         ["stack", "failure points", "pair checks", "blackholes"], rows,
         note=summarize(results))
    assert blackholes == 0, summarize(results)
    assert len(results) == 32
