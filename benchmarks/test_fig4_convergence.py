"""Fig. 4 — network convergence time (ms) for TC1-TC4.

Paper's shape: MR-MTP converges fastest everywhere; for TC2/TC4 (the
detecting router's own interface fails) convergence beats the failure
*detection* time because the update starts immediately; for TC1/TC3 the
remote end's dead/hold timer gates everything, so BGP sits near 3 s,
BGP+BFD near 300 ms and MR-MTP near 100 ms; 2-PoD and 4-PoD are nearly
identical because dissemination is cheap at this scale.
"""

from __future__ import annotations

import pytest

from repro.sim.units import MILLISECOND
from repro.topology.clos import four_pod_params, two_pod_params
from repro.harness.experiments import StackKind, run_failure_experiment

from conftest import ALL_CASES, emit

STACKS = (StackKind.MTP, StackKind.BGP, StackKind.BGP_BFD)


def sweep(params):
    return {
        (kind, case): run_failure_experiment(params, kind, case, seed=0)
        for kind in STACKS
        for case in ALL_CASES
    }


@pytest.mark.parametrize("pods,params_fn", [(2, two_pod_params),
                                            (4, four_pod_params)])
def test_fig4_convergence(benchmark, results_dir, pods, params_fn):
    results = benchmark.pedantic(
        lambda: sweep(params_fn()), rounds=1, iterations=1
    )
    rows = [
        [kind.value] + [f"{results[(kind, case)].convergence_ms:.2f}"
                        for case in ALL_CASES]
        for kind in STACKS
    ]
    emit(results_dir, f"fig4_convergence_{pods}pod",
         f"Fig. 4 — convergence time (ms), {pods}-PoD",
         ["stack"] + list(ALL_CASES), rows)

    conv = {k: results[k].convergence_us for k in results}
    for case in ("TC1", "TC3"):
        # remote-detection cases: gated by the dead/hold timer
        assert conv[(StackKind.MTP, case)] < conv[(StackKind.BGP_BFD, case)] \
            < conv[(StackKind.BGP, case)], case
        assert conv[(StackKind.MTP, case)] <= 120 * MILLISECOND
        assert conv[(StackKind.BGP, case)] >= 2000 * MILLISECOND
        assert conv[(StackKind.BGP_BFD, case)] <= 400 * MILLISECOND
    for case in ("TC2", "TC4"):
        # local-detection cases: convergence beats the detection time
        for kind in STACKS:
            assert conv[(kind, case)] < 50 * MILLISECOND, (kind, case)


def test_fig4_2pod_vs_4pod_nearly_identical(benchmark):
    """Dissemination is cheap at these sizes: doubling the fabric must
    not move TC1 convergence by more than a few ms (paper VII.A)."""
    def both():
        a = run_failure_experiment(two_pod_params(), StackKind.MTP, "TC1")
        b = run_failure_experiment(four_pod_params(), StackKind.MTP, "TC1")
        return a, b

    a, b = benchmark.pedantic(both, rounds=1, iterations=1)
    assert abs(a.convergence_us - b.convergence_us) < 10 * MILLISECOND
