"""Workload-engine performance: the BENCH_workload.json generator.

Profiles the flow-level (fluid) workload engine on the paper's 8-PoD
folded-Clos fabric and records a machine-readable scaling trajectory:

* **grid** — permutation workloads at growing flow counts through the
  full pipeline (synthesize -> path resolution against the deployed
  stack's forwarding state -> epoch settlement -> tail drain), with
  each stage timed separately, plus a best-of-3 timing of the max-min
  waterfall solve alone.
* **headline** — the acceptance record: a 1,000,000-flow permutation
  on the 8-PoD fabric must finish end to end in under 60 s of
  single-core CPU time, with byte conservation holding.

Run::

    PYTHONPATH=src python benchmarks/bench_workload.py [--quick]

Writes ``BENCH_workload.json`` at the repository root.  ``--quick``
caps the grid at 100k flows (the CI artifact); the committed file is
regenerated with a full run.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.harness.experiments import build_and_converge
from repro.sim.units import MILLISECOND
from repro.topology.clos import ClosParams
from repro.workload.engine import FluidWorkload
from repro.workload.fluid import max_min_rates
from repro.workload.spec import WorkloadSpec
from repro.workload.synth import synthesize

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_workload.json"

#: the acceptance bound: 1M flows, end to end, on one core
HEADLINE_FLOWS = 1_000_000
BUDGET_S = 60.0

PODS = 8
STACK = "mtp"


def _spec(flows: int) -> WorkloadSpec:
    return WorkloadSpec(name="mega-permutation", matrix="permutation",
                        flows=flows, duration_ms=200, epoch_ms=50,
                        tenants=8)


def build_fabric(seed: int = 0):
    t0 = time.process_time()
    world, topo, deployment = build_and_converge(
        ClosParams(num_pods=PODS), STACK, seed)
    return world, topo, deployment, time.process_time() - t0


def bench_point(world, topo, deployment, flows: int) -> dict:
    """One grid point: every pipeline stage timed on the shared fabric."""
    spec = _spec(flows)

    c0 = time.process_time()
    flow_set = synthesize(spec, topo.rack_endpoints(), world.rng)
    synth_s = time.process_time() - c0

    c0 = time.process_time()
    engine = FluidWorkload(spec, topo, deployment, flows=flow_set)
    setup_s = time.process_time() - c0

    c0 = time.process_time()
    engine.start()  # includes the forwarding-state capture + path walk
    resolve_s = time.process_time() - c0

    c0 = time.process_time()
    world.run_for(spec.duration_ms * MILLISECOND)
    run_s = time.process_time() - c0

    c0 = time.process_time()
    report = engine.finish()  # final settlement + tail drain
    settle_s = time.process_time() - c0

    # the waterfall alone, everything active, best of 3
    active = np.ones(len(flow_set), dtype=bool)
    solver_s = min(
        _timed(lambda: max_min_rates(engine._problem, active))
        for _ in range(3))

    total_s = synth_s + setup_s + resolve_s + run_s + settle_s
    row = {
        "flows": flows,
        "synth_s": round(synth_s, 4),
        "setup_s": round(setup_s, 4),
        "resolve_s": round(resolve_s, 4),
        "run_s": round(run_s, 4),
        "settle_s": round(settle_s, 4),
        "solver_s": round(solver_s, 4),
        "total_s": round(total_s, 4),
        "flows_per_sec": round(flows / total_s) if total_s else None,
        "completed_flows": report.completed_flows,
        "goodput_bps": report.goodput_bps,
        "peak_link_utilization": report.peak_link_utilization,
        "max_conservation_error": report.max_conservation_error,
    }
    print(f"  {flows:>9,} flows: {total_s:7.2f}s cpu  "
          f"({row['flows_per_sec']:>9,} flows/s)  "
          f"synth {synth_s:5.2f}  resolve {resolve_s:5.2f}  "
          f"settle {settle_s:5.2f}  solve {solver_s:6.3f}")
    return row


def _timed(fn) -> float:
    t0 = time.process_time()
    fn()
    return time.process_time() - t0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="cap the grid at 100k flows (CI mode)")
    ap.add_argument("--output", type=Path, default=OUTPUT)
    args = ap.parse_args(argv)

    grid_flows = ((10_000, 100_000) if args.quick
                  else (10_000, 100_000, HEADLINE_FLOWS))

    print(f"building {PODS}-PoD folded-Clos, converging {STACK}...")
    world, topo, deployment, build_s = build_fabric()
    print(f"  built + converged in {build_s:.2f}s cpu")
    print("workload grid (permutation, process_time):")
    grid = [bench_point(world, topo, deployment, n) for n in grid_flows]

    head = grid[-1]
    doc = {
        "schema": "bench-workload/1",
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "fabric": {
            "topology": "clos",
            "pods": PODS,
            "routers": ClosParams(num_pods=PODS).num_routers,
            "stack": STACK,
            "build_s": round(build_s, 4),
        },
        "grid": grid,
        "headline": {
            "workload": "mega-permutation",
            "flows": head["flows"],
            "total_s": head["total_s"],
            "flows_per_sec": head["flows_per_sec"],
            "solver_s": head["solver_s"],
            "budget_s": BUDGET_S,
            "within_budget": head["total_s"] < BUDGET_S,
            "max_conservation_error": head["max_conservation_error"],
        },
    }
    args.output.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\nwrote {args.output} "
          f"({head['flows']:,} flows in {head['total_s']}s, "
          f"budget {BUDGET_S:.0f}s, "
          f"within_budget={doc['headline']['within_budget']})")
    return 0 if doc["headline"]["within_budget"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
